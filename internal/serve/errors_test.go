package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	sqe "repro"
	"repro/internal/fault"
)

// metricValue scrapes one un-labelled (or fully-labelled) counter from
// a /metrics exposition body.
func metricValue(t *testing.T, s *Server, name string) float64 {
	t.Helper()
	body := do(t, s, http.MethodGet, "/metrics", "").Body.String()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s has unparsable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s missing from /metrics:\n%s", name, body)
	return 0
}

// TestErrorPaths is the table gate for the serving layer's failure
// mapping: every row checks the HTTP status, the JSON error envelope,
// and the counters the failure must move in /metrics.
func TestErrorPaths(t *testing.T) {
	bigBody := `{"query": "` + strings.Repeat("x", 200) + `", "k": 10}`
	cases := []struct {
		name        string
		cfg         Config
		setup       func(s *Server) func()
		method      string
		target      string
		body        string
		wantStatus  int
		wantCode    string             // typed envelope code
		wantErr     string             // substring of the error message
		wantMetrics map[string]float64 // absolute values on a fresh server
	}{
		{
			name:       "malformed JSON body",
			method:     http.MethodPost,
			target:     "/search",
			body:       `{"query": "cable cars",`,
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeBadRequest,
			wantErr:    "bad JSON body",
			wantMetrics: map[string]float64{
				`sqe_http_requests_total{endpoint="search"}`: 1,
				`sqe_http_errors_total{endpoint="search"}`:   1,
			},
		},
		{
			name:       "unknown JSON field",
			method:     http.MethodPost,
			target:     "/search",
			body:       `{"query": "cable cars", "entites": ["Cable car"]}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeBadRequest,
			wantErr:    `unknown field`,
		},
		{
			name:       "wrong JSON type",
			method:     http.MethodPost,
			target:     "/baseline",
			body:       `{"query": "cable cars", "k": "ten"}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeBadRequest,
			wantErr:    "bad JSON body",
			wantMetrics: map[string]float64{
				`sqe_http_errors_total{endpoint="baseline"}`: 1,
			},
		},
		{
			name:       "oversized body",
			cfg:        Config{MaxBodyBytes: 64},
			method:     http.MethodPost,
			target:     "/search",
			body:       bigBody,
			wantStatus: http.StatusRequestEntityTooLarge,
			wantCode:   CodeBodyTooLarge,
			wantErr:    "request body exceeds 64 bytes",
			wantMetrics: map[string]float64{
				`sqe_http_errors_total{endpoint="search"}`: 1,
			},
		},
		{
			name:       "missing query",
			method:     http.MethodGet,
			target:     "/v1/search?k=10",
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeBadRequest,
			wantErr:    "missing query",
		},
		{
			name:       "method not allowed",
			method:     http.MethodDelete,
			target:     "/v1/search?q=x",
			wantStatus: http.StatusMethodNotAllowed,
			wantCode:   CodeMethodNotAllowed,
			wantErr:    "use GET or POST",
		},
		{
			name: "shed at max in-flight",
			cfg:  Config{MaxInFlight: 1},
			setup: func(s *Server) func() {
				s.limiter <- struct{}{} // occupy the only slot
				return func() { <-s.limiter }
			},
			method:     http.MethodGet,
			target:     "/v1/search?q=whatever",
			wantStatus: http.StatusTooManyRequests,
			wantCode:   CodeOverloaded,
			wantErr:    "max in-flight",
			wantMetrics: map[string]float64{
				"sqe_http_shed_total":                      1,
				`sqe_http_errors_total{endpoint="search"}`: 1,
			},
		},
		{
			name:       "deadline exceeded",
			cfg:        Config{Timeout: time.Nanosecond},
			method:     http.MethodGet,
			target:     "/v1/search?q=whatever",
			wantStatus: http.StatusGatewayTimeout,
			wantCode:   CodeTimeout,
			wantErr:    "timed out",
			wantMetrics: map[string]float64{
				"sqe_http_timeouts_total": 1,
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, _ := testServer(t, c.cfg)
			if c.setup != nil {
				defer c.setup(s)()
			}
			w := do(t, s, c.method, c.target, c.body)
			if w.Code != c.wantStatus {
				t.Fatalf("status %d, want %d: %s", w.Code, c.wantStatus, w.Body.String())
			}
			if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("error response content-type %q, want JSON envelope", ct)
			}
			var env apiError
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
				t.Fatalf("error body is not the typed envelope: %v\n%s", err, w.Body.String())
			}
			if env.Err.Code != c.wantCode {
				t.Errorf("envelope code %q, want %q", env.Err.Code, c.wantCode)
			}
			if !strings.Contains(env.Err.Message, c.wantErr) {
				t.Errorf("envelope message %q does not mention %q", env.Err.Message, c.wantErr)
			}
			for name, want := range c.wantMetrics {
				if got := metricValue(t, s, name); got != want {
					t.Errorf("metric %s = %g, want %g", name, got, want)
				}
			}
		})
	}
}

// degradingServer builds a server over a sharded engine with graceful
// degradation on (no retries, so one injected fault is one event).
func degradingServer(t *testing.T) (*Server, sqe.DemoQuery) {
	t.Helper()
	envOnce.Do(func() { env = sqe.MustGenerateDemo(sqe.DemoSmall) })
	eng := sqe.NewEngine(env.Engine.Graph(), env.Engine.Index(),
		sqe.WithShards(4),
		sqe.WithDegradation(sqe.DegradationPolicy{
			PartialShards: true, ExpansionFallback: true, PartialSQEC: true,
		}))
	return testServer(t, Config{Engine: eng})
}

// TestDegradedResponseSurfacing drops exactly one shard and checks the
// full serving contract: 200, the degraded JSON field, the X-SQE-
// Degraded header, and the degradation + fault counters in /metrics.
func TestDegradedResponseSurfacing(t *testing.T) {
	defer fault.Disarm()
	s, q := degradingServer(t)
	fault.Arm(fault.NewRegistry(31).Set(fault.ShardEval, fault.Policy{ErrRate: 1, MaxFaults: 1}))

	w := do(t, s, http.MethodGet, "/v1/baseline?q="+paramEscape(q.Text)+"&k=10", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 with a partial merge: %s", w.Code, w.Body.String())
	}
	resp := decodeSearch(t, w)
	if len(resp.Results) == 0 {
		t.Fatal("partial merge served no results")
	}
	if resp.Degraded == nil || len(resp.Degraded.DroppedShards) != 1 {
		t.Fatalf("degraded field = %+v, want one dropped shard", resp.Degraded)
	}
	if h := w.Header().Get(DegradedHeader); !strings.Contains(h, "shards=1") {
		t.Errorf("%s header = %q, want shards=1", DegradedHeader, h)
	}
	for name, want := range map[string]float64{
		"sqe_degraded_responses_total":                        1,
		"sqe_degraded_dropped_shards_total":                   1,
		"sqe_retries_total":                                   0,
		`sqe_fault_injected_total{point="search.shard_eval"}`: 1,
	} {
		if got := metricValue(t, s, name); got != want {
			t.Errorf("metric %s = %g, want %g", name, got, want)
		}
	}

	// Disarmed, the same request serves clean: no header, no field.
	fault.Disarm()
	w = do(t, s, http.MethodGet, "/v1/baseline?q="+paramEscape(q.Text)+"&k=10", "")
	if w.Code != http.StatusOK {
		t.Fatalf("post-disarm status %d: %s", w.Code, w.Body.String())
	}
	if h := w.Header().Get(DegradedHeader); h != "" {
		t.Errorf("post-disarm response still carries %s=%q", DegradedHeader, h)
	}
	if resp := decodeSearch(t, w); resp.Degraded != nil {
		t.Errorf("post-disarm degraded field: %+v", resp.Degraded)
	}
}

// TestBackendFailureIs503: when degradation cannot absorb the fault
// (every shard fails) the request maps to 503 — a backend problem —
// with the usual JSON envelope, not a 400.
func TestBackendFailureIs503(t *testing.T) {
	defer fault.Disarm()
	s, q := degradingServer(t)
	fault.Arm(fault.NewRegistry(37).Set(fault.ShardEval, fault.Policy{ErrRate: 1}))

	w := do(t, s, http.MethodGet, "/v1/baseline?q="+paramEscape(q.Text)+"&k=10", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "injected") {
		t.Errorf("503 envelope %s does not carry the fault", w.Body.String())
	}
	if got := metricValue(t, s, `sqe_http_errors_total{endpoint="baseline"}`); got != 1 {
		t.Errorf("error counter = %g, want 1", got)
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	sqe "repro"
)

// liveServer builds a Server over a fresh live engine (empty segmented
// index on the shared demo graph).
func liveServer(t *testing.T, flushDocs int) *Server {
	t.Helper()
	envOnce.Do(func() { env = sqe.MustGenerateDemo(sqe.DemoSmall) })
	live, err := sqe.OpenLiveIndex(t.TempDir(), flushDocs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { live.Close() })
	return New(Config{Engine: sqe.NewLiveEngine(env.Engine.Graph(), live)})
}

func decodeIngest(t *testing.T, w *httptest.ResponseRecorder) ingestResponse {
	t.Helper()
	var resp ingestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad ingest response JSON: %v\nbody: %s", err, w.Body.String())
	}
	return resp
}

func TestIngestEndpoint(t *testing.T) {
	s := liveServer(t, 8)

	// Add 20 documents and force a flush: 2 committed segments from the
	// auto-flushes plus one from the explicit flush of the 4-doc tail.
	var adds []string
	for i := 0; i < 20; i++ {
		adds = append(adds, fmt.Sprintf(`{"name":"doc%02d","text":"alpha beta gamma doc%02d"}`, i, i))
	}
	w := do(t, s, http.MethodPost, "/v1/ingest", `{"add":[`+strings.Join(adds, ",")+`],"flush":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeIngest(t, w)
	if resp.Added != 20 || !resp.Flushed || resp.LiveDocs != 20 || resp.BufferDocs != 0 || resp.Segments != 3 {
		t.Fatalf("after add+flush: %+v", resp)
	}

	// The ingested documents are immediately searchable.
	w = do(t, s, http.MethodGet, "/v1/baseline?q=alpha&k=5", "")
	if w.Code != http.StatusOK {
		t.Fatalf("baseline status %d: %s", w.Code, w.Body.String())
	}
	if sr := decodeSearch(t, w); len(sr.Results) == 0 {
		t.Fatal("baseline over ingested docs returned no results")
	}

	// Delete two, then compact away the tombstones.
	w = do(t, s, http.MethodPost, "/v1/ingest", `{"delete":["doc03","doc07","nosuchdoc"],"compact":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp = decodeIngest(t, w)
	if resp.Deleted != 2 || !resp.Compacted || resp.LiveDocs != 18 || resp.Tombstones != 0 || resp.Segments != 1 {
		t.Fatalf("after delete+compact: %+v", resp)
	}

	// An empty body is a no-op state probe.
	w = do(t, s, http.MethodPost, "/v1/ingest", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if resp = decodeIngest(t, w); resp.Added != 0 || resp.LiveDocs != 18 {
		t.Fatalf("empty-body probe: %+v", resp)
	}

	// The live gauges and the ingest endpoint counters are exported.
	w = do(t, s, http.MethodGet, "/metrics", "")
	body := w.Body.String()
	for _, want := range []string{
		"sqe_live_segments 1",
		"sqe_live_docs 18",
		"sqe_live_tombstones 0",
		"sqe_live_ingested_total 20",
		"sqe_live_deleted_total 2",
		`sqe_http_requests_total{endpoint="ingest"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestIngestMethodAndBodyErrors(t *testing.T) {
	s := liveServer(t, 8)

	// GET is rejected with the typed 405 envelope.
	w := do(t, s, http.MethodGet, "/v1/ingest", "")
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", w.Code)
	}
	if code := errorCode(t, w); code != CodeMethodNotAllowed {
		t.Fatalf("GET error code %q, want %q", code, CodeMethodNotAllowed)
	}

	// Unknown JSON fields are rejected (a typo must not silently no-op).
	w = do(t, s, http.MethodPost, "/v1/ingest", `{"ad":[{"name":"x","text":"y"}]}`)
	if w.Code != http.StatusBadRequest || errorCode(t, w) != CodeBadRequest {
		t.Fatalf("unknown field: status %d code %q", w.Code, errorCode(t, w))
	}

	// A document without a name is rejected before anything is applied.
	w = do(t, s, http.MethodPost, "/v1/ingest", `{"add":[{"name":" ","text":"y"}]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("missing name: status %d", w.Code)
	}
}

func TestIngestOnImmutableEngine(t *testing.T) {
	s, _ := testServer(t, Config{})
	w := do(t, s, http.MethodPost, "/v1/ingest", `{"add":[{"name":"x","text":"y"}]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 on an immutable engine", w.Code)
	}
	if code := errorCode(t, w); code != CodeBadRequest {
		t.Fatalf("error code %q, want %q", code, CodeBadRequest)
	}
	if !strings.Contains(w.Body.String(), "immutable") {
		t.Fatalf("error message should say the index is immutable: %s", w.Body.String())
	}
}

// errorCode extracts the typed envelope's code.
func errorCode(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var e apiError
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("bad error envelope: %v\nbody: %s", err, w.Body.String())
	}
	return e.Err.Code
}

// Package serve is the HTTP serving layer over an sqe.Engine: the
// ROADMAP's production-traffic north star needs more than a library —
// it needs an endpoint with per-request deadlines, load shedding and
// observability. The server exposes
//
//	POST/GET /search    — the paper's SQE_C pipeline (or one motif set)
//	POST/GET /expand    — motif expansion only (query graph features)
//	POST/GET /baseline  — the non-expanded QL_Q baseline
//	GET      /healthz   — liveness + uptime
//	GET      /metrics   — Prometheus text metrics (pipeline stages,
//	                      evaluator counters, expansion cache, HTTP)
//
// Work endpoints accept either query parameters (?q=…&entities=a,b&k=10)
// or a JSON body ({"query": …, "entities": […], "k": …}); responses are
// JSON. Every work request runs under the configured timeout and the
// engine's context-aware entry points, so a deadline or a disconnected
// client aborts retrieval mid-evaluation instead of finishing work
// nobody will read. A max-in-flight limiter sheds excess load with 429
// before it queues, keeping tail latency bounded under overload.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	sqe "repro"
	"repro/internal/fault"
)

// Config parameterises the server. Engine is required; zero values for
// the rest select the defaults noted on each field.
type Config struct {
	// Engine serves every request; it must be safe for concurrent use
	// (any options-constructed Engine is).
	Engine *sqe.Engine
	// DefaultK is the result depth when a request omits k (default 10).
	DefaultK int
	// MaxK caps the requestable result depth (default 1000).
	MaxK int
	// Timeout bounds each work request end to end (default 10s; <0
	// disables).
	Timeout time.Duration
	// MaxInFlight bounds concurrently evaluating work requests; excess
	// requests are shed immediately with 429 (default 64; <0 disables).
	MaxInFlight int
	// MaxBodyBytes caps a work request's body; oversized bodies are
	// rejected with 413 (default 1 MiB; <0 disables).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.DefaultK == 0 {
		c.DefaultK = 10
	}
	if c.MaxK == 0 {
		c.MaxK = 1000
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// endpointStats are one endpoint's atomic counters.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
}

// Server is the http.Handler. Construct with New.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	limiter chan struct{}
	start   time.Time

	search   endpointStats
	expand   endpointStats
	baseline endpointStats

	shed     atomic.Int64
	timeouts atomic.Int64
	inFlight atomic.Int64

	// Degradation counters, folded from SearchResponse.Degraded by every
	// work request that goes through runDo.
	degraded      atomic.Int64 // responses whose results were degraded
	degRetries    atomic.Int64 // transient-fault stage retries
	degFallbacks  atomic.Int64 // expansions replaced by the raw query
	droppedShards atomic.Int64 // shard results missing from merges
	droppedRuns   atomic.Int64 // SQE_C run lists missing from splices

	// mu guards the aggregated pipeline stats fed by every search and
	// baseline request (the same counters sqe-bench reports per run).
	mu       sync.Mutex
	pipeline sqe.PipelineStats
}

// New returns a Server over cfg.Engine. It panics if the engine is nil —
// a configuration error no request could recover from.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("serve: Config.Engine is nil")
	}
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	if cfg.MaxInFlight > 0 {
		s.limiter = make(chan struct{}, cfg.MaxInFlight)
	}
	s.mux.HandleFunc("/search", s.work(&s.search, s.handleSearch))
	s.mux.HandleFunc("/expand", s.work(&s.expand, s.handleExpand))
	s.mux.HandleFunc("/baseline", s.work(&s.baseline, s.handleBaseline))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the JSON error envelope every non-200 response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// statusClientClosedRequest is nginx's conventional status for requests
// abandoned by the client; no standard constant exists.
const statusClientClosedRequest = 499

// degrader lets work surface a response's degradation in the X-SQE-
// Degraded header without knowing each endpoint's response shape.
type degrader interface {
	degradation() *sqe.Degradation
}

// DegradedHeader is the response header set when a 200 response's
// results were degraded (shards or runs dropped, expansion replaced).
// Its value is a compact summary, e.g. "shards=1 runs=T".
const DegradedHeader = "X-SQE-Degraded"

// degradedHeaderValue renders the compact header summary.
func degradedHeaderValue(d *sqe.Degradation) string {
	var parts []string
	if len(d.DroppedShards) > 0 {
		parts = append(parts, fmt.Sprintf("shards=%d", len(d.DroppedShards)))
	}
	if len(d.DroppedRuns) > 0 {
		parts = append(parts, "runs="+strings.Join(d.DroppedRuns, ","))
	}
	if d.ExpansionFallbacks > 0 {
		parts = append(parts, fmt.Sprintf("expansion_fallback=%d", d.ExpansionFallbacks))
	}
	return strings.Join(parts, " ")
}

// work wraps a handler with the serving policies: method check,
// max-in-flight shedding, the body-size cap, the per-request timeout,
// counters, the mapping from context/fault errors to HTTP statuses, and
// the degraded-response header.
func (s *Server) work(st *endpointStats, h func(context.Context, *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st.requests.Add(1)
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			st.errors.Add(1)
			writeJSON(w, http.StatusMethodNotAllowed, apiError{"use GET or POST"})
			return
		}
		if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		if s.limiter != nil {
			select {
			case s.limiter <- struct{}{}:
				defer func() { <-s.limiter }()
			default:
				// Shed instead of queueing: under overload a bounded
				// queue only converts excess load into timeouts.
				s.shed.Add(1)
				st.errors.Add(1)
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, apiError{"server at max in-flight requests"})
				return
			}
		}
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		ctx := r.Context()
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
			defer cancel()
		}
		resp, err := h(ctx, r)
		if err != nil {
			st.errors.Add(1)
			var tooBig *http.MaxBytesError
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				s.timeouts.Add(1)
				writeJSON(w, http.StatusGatewayTimeout, apiError{"request timed out"})
			case errors.Is(err, context.Canceled):
				// The client is gone; the status is for the access log.
				writeJSON(w, statusClientClosedRequest, apiError{"client closed request"})
			case errors.As(err, &tooBig):
				writeJSON(w, http.StatusRequestEntityTooLarge,
					apiError{fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			case isBackendFailure(err):
				// An injected fault or contained panic that degradation
				// could not absorb: the server, not the request, is the
				// problem.
				writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
			default:
				writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
			}
			return
		}
		if dg, ok := resp.(degrader); ok {
			if d := dg.degradation(); d.Degraded() {
				w.Header().Set(DegradedHeader, degradedHeaderValue(d))
			}
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// isBackendFailure reports whether err is a backend fault — an injected
// fault or a contained panic — rather than a bad request.
func isBackendFailure(err error) bool {
	var pe *fault.PanicError
	return fault.IsInjected(err) || errors.As(err, &pe)
}

// request is the decoded form of a work request, from either query
// parameters or a JSON body.
type request struct {
	Query    string   `json:"query"`
	Entities []string `json:"entities"`
	K        int      `json:"k"`
	Set      string   `json:"set"`
}

// decodeRequest reads query parameters (GET or POST) and, for POST with
// a body, merges the JSON fields over them.
func (s *Server) decodeRequest(r *http.Request) (request, error) {
	var req request
	q := r.URL.Query()
	req.Query = q.Get("q")
	if req.Query == "" {
		req.Query = q.Get("query")
	}
	for _, ent := range q["entities"] {
		for _, e := range strings.Split(ent, ",") {
			if e = strings.TrimSpace(e); e != "" {
				req.Entities = append(req.Entities, e)
			}
		}
	}
	if ks := q.Get("k"); ks != "" {
		k, err := strconv.Atoi(ks)
		if err != nil {
			return req, fmt.Errorf("bad k %q", ks)
		}
		req.K = k
	}
	req.Set = q.Get("set")
	if r.Method == http.MethodPost && r.Body != nil && r.ContentLength != 0 {
		dec := json.NewDecoder(r.Body)
		// Reject unknown fields: a typo like "entites" would otherwise
		// silently run a different query than the client intended.
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("bad JSON body: %w", err)
		}
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, errors.New("missing query (q parameter or JSON body)")
	}
	if req.K <= 0 {
		req.K = s.cfg.DefaultK
	}
	if req.K > s.cfg.MaxK {
		req.K = s.cfg.MaxK
	}
	return req, nil
}

// motifSet maps the wire form ("T", "TS"/"T&S", "S") to a MotifSet.
func motifSet(s string) (sqe.MotifSet, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "T":
		return sqe.MotifT, nil
	case "TS", "T&S", "T+S":
		return sqe.MotifTS, nil
	case "S":
		return sqe.MotifS, nil
	}
	return 0, fmt.Errorf("unknown motif set %q (want T, TS or S)", s)
}

// resultJSON is one ranked document on the wire.
type resultJSON struct {
	Rank  int     `json:"rank"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

func toResultJSON(rs []sqe.Result) []resultJSON {
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		out[i] = resultJSON{Rank: i + 1, Name: r.Name, Score: r.Score}
	}
	return out
}

// searchResponse is the /search and /baseline response body.
type searchResponse struct {
	Query    string       `json:"query"`
	Entities []string     `json:"entities,omitempty"`
	Set      string       `json:"set,omitempty"`
	K        int          `json:"k"`
	Results  []resultJSON `json:"results"`
	// Degraded reports what graceful degradation did to this request
	// (dropped shards/runs, expansion fallbacks, retries); omitted when
	// nothing happened. See sqe.Degradation for the field contract.
	Degraded *sqe.Degradation `json:"degraded,omitempty"`
	TookMs   float64          `json:"took_ms"`
}

// degradation implements degrader for the X-SQE-Degraded header.
func (r *searchResponse) degradation() *sqe.Degradation { return r.Degraded }

// recordPipeline merges one request's pipeline stats into the server
// aggregate that /metrics exports.
func (s *Server) recordPipeline(ps *sqe.PipelineStats) {
	s.mu.Lock()
	s.pipeline.Add(ps)
	s.mu.Unlock()
}

// runDo executes one engine request with stats collection and folds the
// instrumentation into the /metrics aggregate. All work endpoints that
// retrieve go through here — the per-endpoint request assembly that used
// to pick between the deprecated Search* variants is gone.
func (s *Server) runDo(ctx context.Context, req sqe.SearchRequest) (*sqe.SearchResponse, error) {
	req.CollectStats = true
	resp, err := s.cfg.Engine.Do(ctx, req)
	if err != nil {
		return nil, err
	}
	s.recordPipeline(resp.Stats)
	if d := resp.Degraded; d != nil {
		if d.Degraded() {
			s.degraded.Add(1)
		}
		s.degRetries.Add(int64(d.Retries))
		s.degFallbacks.Add(int64(d.ExpansionFallbacks))
		s.droppedShards.Add(int64(len(d.DroppedShards)))
		s.droppedRuns.Add(int64(len(d.DroppedRuns)))
	}
	return resp, nil
}

func (s *Server) handleSearch(ctx context.Context, r *http.Request) (any, error) {
	req, err := s.decodeRequest(r)
	if err != nil {
		return nil, err
	}
	er := sqe.SearchRequest{Query: req.Query, EntityTitles: req.Entities, K: req.K}
	if req.Set != "" {
		if er.MotifSet, err = motifSet(req.Set); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	resp, err := s.runDo(ctx, er)
	if err != nil {
		return nil, err
	}
	return &searchResponse{
		Query:    req.Query,
		Entities: req.Entities,
		Set:      req.Set,
		K:        req.K,
		Results:  toResultJSON(resp.Results),
		Degraded: resp.Degraded,
		TookMs:   float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

func (s *Server) handleBaseline(ctx context.Context, r *http.Request) (any, error) {
	req, err := s.decodeRequest(r)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := s.runDo(ctx, sqe.SearchRequest{Query: req.Query, K: req.K, Baseline: true})
	if err != nil {
		return nil, err
	}
	return &searchResponse{
		Query:    req.Query,
		K:        req.K,
		Results:  toResultJSON(resp.Results),
		Degraded: resp.Degraded,
		TookMs:   float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

// featureJSON is one expansion feature on the wire.
type featureJSON struct {
	Title  string  `json:"title"`
	Weight float64 `json:"weight"`
}

// expandResponse is the /expand response body.
type expandResponse struct {
	Query           string        `json:"query"`
	Set             string        `json:"set"`
	QueryNodeTitles []string      `json:"query_node_titles"`
	Features        []featureJSON `json:"features"`
	TookMs          float64       `json:"took_ms"`
}

func (s *Server) handleExpand(ctx context.Context, r *http.Request) (any, error) {
	req, err := s.decodeRequest(r)
	if err != nil {
		return nil, err
	}
	if req.Set == "" {
		req.Set = "TS"
	}
	set, err := motifSet(req.Set)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	exp, err := s.cfg.Engine.ExpandContext(ctx, req.Query, req.Entities, set)
	if err != nil {
		return nil, err
	}
	features := make([]featureJSON, len(exp.Features))
	for i, f := range exp.Features {
		features[i] = featureJSON{Title: f.Title, Weight: f.Weight}
	}
	return &expandResponse{
		Query:           req.Query,
		Set:             req.Set,
		QueryNodeTitles: exp.QueryNodeTitles,
		Features:        features,
		TookMs:          float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_s":  time.Since(s.start).Seconds(),
		"in_flight": s.inFlight.Load(),
	})
}

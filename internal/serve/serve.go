// Package serve is the HTTP serving layer over an sqe.Engine: the
// ROADMAP's production-traffic north star needs more than a library —
// it needs an endpoint with per-request deadlines, load shedding and
// observability. The API is versioned; v1 is the current surface:
//
//	POST/GET /v1/search    — the paper's SQE_C pipeline (or one motif set)
//	POST/GET /v1/expand    — motif expansion only (query graph features)
//	POST/GET /v1/baseline  — the non-expanded QL_Q baseline
//	POST     /v1/ingest    — live document ingest/delete/flush/compact
//	                         (engines built with NewLiveEngine only)
//	GET      /healthz      — liveness + uptime (unversioned by design:
//	                         probes outlive API versions)
//	GET      /metrics      — Prometheus text metrics (pipeline stages,
//	                         evaluator counters, expansion cache, HTTP)
//
// The original unversioned paths (/search, /expand, /baseline) remain
// as aliases onto the same handlers — responses are byte-identical —
// but every reply through them carries a Deprecation header and a Link
// to the v1 successor, so clients can be found and migrated before the
// aliases are removed.
//
// Work endpoints accept either query parameters (?q=…&entities=a,b&k=10)
// or a JSON body ({"query": …, "entities": […], "k": …}); responses are
// JSON. Errors use one typed envelope on every endpoint and version:
//
//	{"error": {"code": "bad_request", "message": "missing query …"}}
//
// with a small closed set of codes (see the Code* constants) so clients
// can branch on code instead of parsing prose. Every work request runs
// under the configured timeout and the engine's context-aware entry
// points, so a deadline or a disconnected client aborts retrieval
// mid-evaluation instead of finishing work nobody will read.
//
// Admission control is two-stage: a max-in-flight limiter bounds the
// requests evaluating concurrently, and an optional bounded wait queue
// (Config.QueueDepth/QueueTimeout) absorbs short bursts by holding
// excess requests briefly for a slot instead of failing them. Anything
// beyond the queue — or queued longer than the deadline — is shed with
// 429 and Retry-After, keeping tail latency bounded under overload. The
// default remains queue-free: shed immediately at max in-flight.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	sqe "repro"
	"repro/internal/fault"
)

// Config parameterises the server. Engine is required; zero values for
// the rest select the defaults noted on each field.
type Config struct {
	// Engine serves every request; it must be safe for concurrent use
	// (any options-constructed Engine is).
	Engine *sqe.Engine
	// DefaultK is the result depth when a request omits k (default 10).
	DefaultK int
	// MaxK caps the requestable result depth (default 1000).
	MaxK int
	// Timeout bounds each work request end to end (default 10s; <0
	// disables).
	Timeout time.Duration
	// MaxInFlight bounds concurrently evaluating work requests; excess
	// requests are shed with 429 (default 64; <0 disables) — immediately
	// when no queue is configured, otherwise after the queue is exhausted.
	MaxInFlight int
	// QueueDepth bounds how many requests may wait for an in-flight slot
	// when the limiter is saturated, instead of being shed on arrival. A
	// short bounded queue rides out bursts without the unbounded-queue
	// failure mode (every queued request eventually timing out). Default
	// 0: no queue, shed immediately — the pre-queue behaviour.
	QueueDepth int
	// QueueTimeout bounds how long a queued request waits for a slot
	// before being shed with 429 (default 100ms when QueueDepth > 0).
	// Waiting longer than the client would tolerate only converts
	// overload into timeouts, so keep it a fraction of Timeout.
	QueueTimeout time.Duration
	// MaxBodyBytes caps a work request's body; oversized bodies are
	// rejected with 413 (default 1 MiB; <0 disables).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.DefaultK == 0 {
		c.DefaultK = 10
	}
	if c.MaxK == 0 {
		c.MaxK = 1000
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.QueueDepth > 0 && c.QueueTimeout == 0 {
		c.QueueTimeout = 100 * time.Millisecond
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// endpointStats are one endpoint's atomic counters.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
}

// Server is the http.Handler. Construct with New.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	limiter chan struct{}
	start   time.Time

	search   endpointStats
	expand   endpointStats
	baseline endpointStats
	ingest   endpointStats

	shed          atomic.Int64
	timeouts      atomic.Int64
	inFlight      atomic.Int64
	queueLen      atomic.Int64 // requests currently waiting for a slot
	queueWaits    atomic.Int64 // requests that entered the wait queue
	queueTimeouts atomic.Int64 // queued requests shed after QueueTimeout
	deprecated    atomic.Int64 // requests served through a legacy alias

	// Degradation counters, folded from SearchResponse.Degraded by every
	// work request that goes through runDo.
	degraded      atomic.Int64 // responses whose results were degraded
	degRetries    atomic.Int64 // transient-fault stage retries
	degFallbacks  atomic.Int64 // expansions replaced by the raw query
	droppedShards atomic.Int64 // shard results missing from merges
	droppedRuns   atomic.Int64 // SQE_C run lists missing from splices

	// mu guards the aggregated pipeline stats fed by every search and
	// baseline request (the same counters sqe-bench reports per run).
	mu       sync.Mutex
	pipeline sqe.PipelineStats
}

// New returns a Server over cfg.Engine. It panics if the engine is nil —
// a configuration error no request could recover from.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("serve: Config.Engine is nil")
	}
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	if cfg.MaxInFlight > 0 {
		s.limiter = make(chan struct{}, cfg.MaxInFlight)
	}
	for name, h := range map[string]http.HandlerFunc{
		"search":   s.work(&s.search, s.handleSearch),
		"expand":   s.work(&s.expand, s.handleExpand),
		"baseline": s.work(&s.baseline, s.handleBaseline),
	} {
		s.mux.HandleFunc("/v1/"+name, h)
		// The pre-versioning path serves the identical handler — bodies
		// are byte-for-byte the same — plus the deprecation headers.
		s.mux.HandleFunc("/"+name, s.deprecatedAlias(name, h))
	}
	// Ingest is v1-only (no legacy alias existed) and POST-only: it
	// mutates the index, so serving it on GET would invite accidental
	// replays by crawlers and prefetchers.
	s.mux.HandleFunc("/v1/ingest", s.postOnly(&s.ingest, s.work(&s.ingest, s.handleIngest)))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// postOnly rejects every method but POST with the typed 405 envelope
// before the request reaches the work wrapper (which would admit GET).
func (s *Server) postOnly(st *endpointStats, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			st.requests.Add(1)
			st.errors.Add(1)
			writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use POST")
			return
		}
		h(w, r)
	}
}

// deprecatedAlias wraps a v1 handler for its legacy unversioned path:
// same handler, same body, plus the RFC 8594 Deprecation header and a
// successor-version Link clients can follow to migrate.
func (s *Server) deprecatedAlias(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.deprecated.Add(1)
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1/"+name+">; rel=\"successor-version\"")
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Error codes carried by the JSON error envelope. The set is closed and
// versioned with the API: clients branch on code, messages stay free to
// improve.
const (
	// CodeBadRequest: the request itself is malformed (missing query,
	// bad JSON, unknown motif set, unknown entity title).
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed: work endpoints accept only GET and POST.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeOverloaded: shed by admission control (max in-flight reached
	// and, if a queue is configured, the queue full or timed out).
	CodeOverloaded = "overloaded"
	// CodeTimeout: the per-request deadline elapsed mid-evaluation.
	CodeTimeout = "timeout"
	// CodeClientClosed: the client disconnected before the response.
	CodeClientClosed = "client_closed"
	// CodeBodyTooLarge: the request body exceeded MaxBodyBytes.
	CodeBodyTooLarge = "body_too_large"
	// CodeBackendUnavailable: a backend failure degradation could not
	// absorb — the server, not the request, is the problem.
	CodeBackendUnavailable = "backend_unavailable"
)

// apiError is the typed JSON error envelope every non-200 response
// carries: {"error": {"code": …, "message": …}}.
type apiError struct {
	Err errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError renders the typed envelope.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, apiError{Err: errorBody{Code: code, Message: message}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// statusClientClosedRequest is nginx's conventional status for requests
// abandoned by the client; no standard constant exists.
const statusClientClosedRequest = 499

// degrader lets work surface a response's degradation in the X-SQE-
// Degraded header without knowing each endpoint's response shape.
type degrader interface {
	degradation() *sqe.Degradation
}

// DegradedHeader is the response header set when a 200 response's
// results were degraded (shards or runs dropped, expansion replaced).
// Its value is a compact summary, e.g. "shards=1 runs=T".
const DegradedHeader = "X-SQE-Degraded"

// degradedHeaderValue renders the compact header summary.
func degradedHeaderValue(d *sqe.Degradation) string {
	var parts []string
	if len(d.DroppedShards) > 0 {
		parts = append(parts, fmt.Sprintf("shards=%d", len(d.DroppedShards)))
	}
	if len(d.DroppedRuns) > 0 {
		parts = append(parts, "runs="+strings.Join(d.DroppedRuns, ","))
	}
	if d.ExpansionFallbacks > 0 {
		parts = append(parts, fmt.Sprintf("expansion_fallback=%d", d.ExpansionFallbacks))
	}
	return strings.Join(parts, " ")
}

// admit runs admission control for one work request. It returns a
// release function and true when the request may evaluate; otherwise it
// has already written the 429 and returns false. With the limiter
// saturated and a queue configured, the request waits — bounded by
// QueueDepth slots and QueueTimeout — for capacity instead of failing a
// burst the server could have absorbed a few milliseconds later.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, st *endpointStats) (release func(), ok bool) {
	if s.limiter == nil {
		return func() {}, true
	}
	select {
	case s.limiter <- struct{}{}:
		return func() { <-s.limiter }, true
	default:
	}
	message := "server at max in-flight requests"
	if s.cfg.QueueDepth > 0 {
		if n := s.queueLen.Add(1); n <= int64(s.cfg.QueueDepth) {
			s.queueWaits.Add(1)
			t := time.NewTimer(s.cfg.QueueTimeout)
			defer t.Stop()
			select {
			case s.limiter <- struct{}{}:
				s.queueLen.Add(-1)
				return func() { <-s.limiter }, true
			case <-t.C:
				s.queueLen.Add(-1)
				s.queueTimeouts.Add(1)
				message = "server at max in-flight requests (queue wait timed out)"
			case <-r.Context().Done():
				s.queueLen.Add(-1)
				st.errors.Add(1)
				writeError(w, statusClientClosedRequest, CodeClientClosed, "client closed request")
				return nil, false
			}
		} else {
			s.queueLen.Add(-1)
			message = "server at max in-flight requests (queue full)"
		}
	}
	s.shed.Add(1)
	st.errors.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, CodeOverloaded, message)
	return nil, false
}

// work wraps a handler with the serving policies: method check,
// admission control (max-in-flight plus the optional bounded queue),
// the body-size cap, the per-request timeout, counters, the mapping
// from context/fault errors to HTTP statuses and error codes, and the
// degraded-response header.
func (s *Server) work(st *endpointStats, h func(context.Context, *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st.requests.Add(1)
		if r.Method != http.MethodGet && r.Method != http.MethodPost {
			st.errors.Add(1)
			writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "use GET or POST")
			return
		}
		if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		release, ok := s.admit(w, r, st)
		if !ok {
			return
		}
		defer release()
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		ctx := r.Context()
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
			defer cancel()
		}
		resp, err := h(ctx, r)
		if err != nil {
			st.errors.Add(1)
			var tooBig *http.MaxBytesError
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				s.timeouts.Add(1)
				writeError(w, http.StatusGatewayTimeout, CodeTimeout, "request timed out")
			case errors.Is(err, context.Canceled):
				// The client is gone; the status is for the access log.
				writeError(w, statusClientClosedRequest, CodeClientClosed, "client closed request")
			case errors.As(err, &tooBig):
				writeError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			case isBackendFailure(err):
				// An injected fault or contained panic that degradation
				// could not absorb: the server, not the request, is the
				// problem.
				writeError(w, http.StatusServiceUnavailable, CodeBackendUnavailable, err.Error())
			default:
				writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			}
			return
		}
		if dg, ok := resp.(degrader); ok {
			if d := dg.degradation(); d.Degraded() {
				w.Header().Set(DegradedHeader, degradedHeaderValue(d))
			}
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// isBackendFailure reports whether err is a backend fault — an injected
// fault or a contained panic — rather than a bad request.
func isBackendFailure(err error) bool {
	var pe *fault.PanicError
	return fault.IsInjected(err) || errors.As(err, &pe)
}

// request is the decoded form of a work request, from either query
// parameters or a JSON body.
type request struct {
	Query    string   `json:"query"`
	Entities []string `json:"entities"`
	K        int      `json:"k"`
	Set      string   `json:"set"`
}

// decodeRequest reads query parameters (GET or POST) and, for POST with
// a body, merges the JSON fields over them.
func (s *Server) decodeRequest(r *http.Request) (request, error) {
	var req request
	q := r.URL.Query()
	req.Query = q.Get("q")
	if req.Query == "" {
		req.Query = q.Get("query")
	}
	for _, ent := range q["entities"] {
		for _, e := range strings.Split(ent, ",") {
			if e = strings.TrimSpace(e); e != "" {
				req.Entities = append(req.Entities, e)
			}
		}
	}
	if ks := q.Get("k"); ks != "" {
		k, err := strconv.Atoi(ks)
		if err != nil {
			return req, fmt.Errorf("bad k %q", ks)
		}
		req.K = k
	}
	req.Set = q.Get("set")
	if r.Method == http.MethodPost && r.Body != nil && r.ContentLength != 0 {
		dec := json.NewDecoder(r.Body)
		// Reject unknown fields: a typo like "entites" would otherwise
		// silently run a different query than the client intended.
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("bad JSON body: %w", err)
		}
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, errors.New("missing query (q parameter or JSON body)")
	}
	if req.K <= 0 {
		req.K = s.cfg.DefaultK
	}
	if req.K > s.cfg.MaxK {
		req.K = s.cfg.MaxK
	}
	return req, nil
}

// motifSet maps the wire form ("T", "TS"/"T&S", "S") to a MotifSet.
func motifSet(s string) (sqe.MotifSet, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "T":
		return sqe.MotifT, nil
	case "TS", "T&S", "T+S":
		return sqe.MotifTS, nil
	case "S":
		return sqe.MotifS, nil
	}
	return 0, fmt.Errorf("unknown motif set %q (want T, TS or S)", s)
}

// resultJSON is one ranked document on the wire.
type resultJSON struct {
	Rank  int     `json:"rank"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

func toResultJSON(rs []sqe.Result) []resultJSON {
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		out[i] = resultJSON{Rank: i + 1, Name: r.Name, Score: r.Score}
	}
	return out
}

// searchResponse is the /search and /baseline response body.
type searchResponse struct {
	Query    string       `json:"query"`
	Entities []string     `json:"entities,omitempty"`
	Set      string       `json:"set,omitempty"`
	K        int          `json:"k"`
	Results  []resultJSON `json:"results"`
	// Degraded reports what graceful degradation did to this request
	// (dropped shards/runs, expansion fallbacks, retries); omitted when
	// nothing happened. See sqe.Degradation for the field contract.
	Degraded *sqe.Degradation `json:"degraded,omitempty"`
	TookMs   float64          `json:"took_ms"`
}

// degradation implements degrader for the X-SQE-Degraded header.
func (r *searchResponse) degradation() *sqe.Degradation { return r.Degraded }

// recordPipeline merges one request's pipeline stats into the server
// aggregate that /metrics exports.
func (s *Server) recordPipeline(ps *sqe.PipelineStats) {
	s.mu.Lock()
	s.pipeline.Add(ps)
	s.mu.Unlock()
}

// runDo executes one engine request with stats collection and folds the
// instrumentation into the /metrics aggregate. All work endpoints that
// retrieve go through here — the per-endpoint request assembly that used
// to pick between the deprecated Search* variants is gone.
func (s *Server) runDo(ctx context.Context, req sqe.SearchRequest) (*sqe.SearchResponse, error) {
	req.CollectStats = true
	resp, err := s.cfg.Engine.Do(ctx, req)
	if err != nil {
		return nil, err
	}
	s.recordPipeline(resp.Stats)
	if d := resp.Degraded; d != nil {
		if d.Degraded() {
			s.degraded.Add(1)
		}
		s.degRetries.Add(int64(d.Retries))
		s.degFallbacks.Add(int64(d.ExpansionFallbacks))
		s.droppedShards.Add(int64(len(d.DroppedShards)))
		s.droppedRuns.Add(int64(len(d.DroppedRuns)))
	}
	return resp, nil
}

func (s *Server) handleSearch(ctx context.Context, r *http.Request) (any, error) {
	req, err := s.decodeRequest(r)
	if err != nil {
		return nil, err
	}
	er := sqe.SearchRequest{Query: req.Query, EntityTitles: req.Entities, K: req.K}
	if req.Set != "" {
		if er.MotifSet, err = motifSet(req.Set); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	resp, err := s.runDo(ctx, er)
	if err != nil {
		return nil, err
	}
	return &searchResponse{
		Query:    req.Query,
		Entities: req.Entities,
		Set:      req.Set,
		K:        req.K,
		Results:  toResultJSON(resp.Results),
		Degraded: resp.Degraded,
		TookMs:   float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

func (s *Server) handleBaseline(ctx context.Context, r *http.Request) (any, error) {
	req, err := s.decodeRequest(r)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := s.runDo(ctx, sqe.SearchRequest{Query: req.Query, K: req.K, Baseline: true})
	if err != nil {
		return nil, err
	}
	return &searchResponse{
		Query:    req.Query,
		K:        req.K,
		Results:  toResultJSON(resp.Results),
		Degraded: resp.Degraded,
		TookMs:   float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

// featureJSON is one expansion feature on the wire.
type featureJSON struct {
	Title  string  `json:"title"`
	Weight float64 `json:"weight"`
}

// expandResponse is the /expand response body.
type expandResponse struct {
	Query           string        `json:"query"`
	Set             string        `json:"set"`
	QueryNodeTitles []string      `json:"query_node_titles"`
	Features        []featureJSON `json:"features"`
	TookMs          float64       `json:"took_ms"`
}

func (s *Server) handleExpand(ctx context.Context, r *http.Request) (any, error) {
	req, err := s.decodeRequest(r)
	if err != nil {
		return nil, err
	}
	if req.Set == "" {
		req.Set = "TS"
	}
	set, err := motifSet(req.Set)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	exp, err := s.cfg.Engine.ExpandContext(ctx, req.Query, req.Entities, set)
	if err != nil {
		return nil, err
	}
	features := make([]featureJSON, len(exp.Features))
	for i, f := range exp.Features {
		features[i] = featureJSON{Title: f.Title, Weight: f.Weight}
	}
	return &expandResponse{
		Query:           req.Query,
		Set:             req.Set,
		QueryNodeTitles: exp.QueryNodeTitles,
		Features:        features,
		TookMs:          float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

// ingestDoc is one document on the ingest wire.
type ingestDoc struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// ingestRequest is the /v1/ingest body. Operations apply in a fixed
// order — adds, then deletes, then flush, then compact — so one request
// can express "replace these documents and persist".
type ingestRequest struct {
	Add     []ingestDoc `json:"add"`
	Delete  []string    `json:"delete"`
	Flush   bool        `json:"flush"`
	Compact bool        `json:"compact"`
}

// ingestResponse reports what was applied plus the live index's state
// after the request — the same numbers the sqe_live_* metrics export.
type ingestResponse struct {
	Added      int     `json:"added"`
	Deleted    int     `json:"deleted"`
	Flushed    bool    `json:"flushed,omitempty"`
	Compacted  bool    `json:"compacted,omitempty"`
	Segments   int     `json:"segments"`
	BufferDocs int     `json:"buffer_docs"`
	LiveDocs   int     `json:"live_docs"`
	Tombstones int     `json:"tombstones"`
	TookMs     float64 `json:"took_ms"`
}

// handleIngest ignores its context: the mutation calls are not
// context-aware (each is a quick buffer append or a local disk commit
// that must not be torn by a client disconnect mid-write).
func (s *Server) handleIngest(_ context.Context, r *http.Request) (any, error) {
	if s.cfg.Engine.Live() == nil {
		return nil, errors.New("engine serves an immutable index; ingest requires a live (segmented) deployment")
	}
	var req ingestRequest
	if r.Body != nil && r.ContentLength != 0 {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, fmt.Errorf("bad JSON body: %w", err)
		}
	}
	for i, d := range req.Add {
		if strings.TrimSpace(d.Name) == "" {
			return nil, fmt.Errorf("add[%d]: missing document name", i)
		}
	}
	start := time.Now()
	var out ingestResponse
	// A failed Ingest has still buffered the document (the error reports
	// a failed background flush, which retries on the next trigger), so
	// it counts as added; the error still surfaces so the client knows
	// durability is behind.
	for _, d := range req.Add {
		err := s.cfg.Engine.Ingest(d.Name, d.Text)
		out.Added++
		if err != nil {
			return nil, fmt.Errorf("ingest %q (document buffered, flush pending): %w", d.Name, err)
		}
	}
	for _, name := range req.Delete {
		n, err := s.cfg.Engine.Delete(name)
		if err != nil {
			return nil, fmt.Errorf("delete %q: %w", name, err)
		}
		out.Deleted += n
	}
	if req.Flush {
		if err := s.cfg.Engine.Flush(); err != nil {
			return nil, fmt.Errorf("flush: %w", err)
		}
		out.Flushed = true
	}
	if req.Compact {
		if err := s.cfg.Engine.CompactSegments(); err != nil {
			return nil, fmt.Errorf("compact: %w", err)
		}
		out.Compacted = true
	}
	st, _ := s.cfg.Engine.LiveStats()
	out.Segments = st.DiskSegments
	out.BufferDocs = st.BufferDocs
	out.LiveDocs = st.LiveDocs
	out.Tombstones = st.Tombstones
	out.TookMs = float64(time.Since(start).Microseconds()) / 1000
	return &out, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_s":  time.Since(s.start).Seconds(),
		"in_flight": s.inFlight.Load(),
	})
}

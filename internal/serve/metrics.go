package serve

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	sqe "repro"
	"repro/internal/fault"
)

// handleMetrics renders the server's counters in the Prometheus text
// exposition format (hand-rendered: the repo takes no dependencies, and
// the format is a few lines of fmt). Three families:
//
//   - sqe_http_*      — the serving layer (requests, errors, shedding)
//   - sqe_pipeline_*  — aggregated PipelineStats from every served query
//     (the same per-stage counters cmd/sqe-bench reports per run)
//   - sqe_expansion_cache_* — the engine's expansion cache, if enabled
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ps := s.pipeline
	s.mu.Unlock()

	var sb strings.Builder
	counter := func(name, help string) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	counter("sqe_http_requests_total", "HTTP requests received, by endpoint.")
	fmt.Fprintf(&sb, "sqe_http_requests_total{endpoint=\"search\"} %d\n", s.search.requests.Load())
	fmt.Fprintf(&sb, "sqe_http_requests_total{endpoint=\"expand\"} %d\n", s.expand.requests.Load())
	fmt.Fprintf(&sb, "sqe_http_requests_total{endpoint=\"baseline\"} %d\n", s.baseline.requests.Load())
	fmt.Fprintf(&sb, "sqe_http_requests_total{endpoint=\"ingest\"} %d\n", s.ingest.requests.Load())
	counter("sqe_http_errors_total", "HTTP requests answered with a non-200 status, by endpoint.")
	fmt.Fprintf(&sb, "sqe_http_errors_total{endpoint=\"search\"} %d\n", s.search.errors.Load())
	fmt.Fprintf(&sb, "sqe_http_errors_total{endpoint=\"expand\"} %d\n", s.expand.errors.Load())
	fmt.Fprintf(&sb, "sqe_http_errors_total{endpoint=\"baseline\"} %d\n", s.baseline.errors.Load())
	fmt.Fprintf(&sb, "sqe_http_errors_total{endpoint=\"ingest\"} %d\n", s.ingest.errors.Load())
	counter("sqe_http_shed_total", "Requests shed with 429 by admission control.")
	fmt.Fprintf(&sb, "sqe_http_shed_total %d\n", s.shed.Load())
	counter("sqe_http_queue_waits_total", "Requests that waited in the admission queue for an in-flight slot.")
	fmt.Fprintf(&sb, "sqe_http_queue_waits_total %d\n", s.queueWaits.Load())
	counter("sqe_http_queue_timeouts_total", "Queued requests shed after waiting QueueTimeout without a slot.")
	fmt.Fprintf(&sb, "sqe_http_queue_timeouts_total %d\n", s.queueTimeouts.Load())
	counter("sqe_http_deprecated_requests_total", "Requests served through a deprecated unversioned path alias.")
	fmt.Fprintf(&sb, "sqe_http_deprecated_requests_total %d\n", s.deprecated.Load())
	counter("sqe_http_timeouts_total", "Requests that hit the per-request deadline (504).")
	fmt.Fprintf(&sb, "sqe_http_timeouts_total %d\n", s.timeouts.Load())
	gauge("sqe_http_in_flight", "Work requests currently evaluating.")
	fmt.Fprintf(&sb, "sqe_http_in_flight %d\n", s.inFlight.Load())
	gauge("sqe_http_queued", "Work requests currently waiting in the admission queue.")
	fmt.Fprintf(&sb, "sqe_http_queued %d\n", s.queueLen.Load())
	gauge("sqe_uptime_seconds", "Seconds since the server started.")
	fmt.Fprintf(&sb, "sqe_uptime_seconds %g\n", time.Since(s.start).Seconds())

	counter("sqe_degraded_responses_total", "200 responses whose results were degraded (shards or runs dropped, expansion replaced).")
	fmt.Fprintf(&sb, "sqe_degraded_responses_total %d\n", s.degraded.Load())
	counter("sqe_degraded_dropped_shards_total", "Shard results missing from partial merges.")
	fmt.Fprintf(&sb, "sqe_degraded_dropped_shards_total %d\n", s.droppedShards.Load())
	counter("sqe_degraded_dropped_runs_total", "SQE_C run lists missing from splices.")
	fmt.Fprintf(&sb, "sqe_degraded_dropped_runs_total %d\n", s.droppedRuns.Load())
	counter("sqe_retries_total", "Pipeline stage re-runs after transient faults.")
	fmt.Fprintf(&sb, "sqe_retries_total %d\n", s.degRetries.Load())
	counter("sqe_expansion_fallbacks_total", "Motif expansions replaced by the plain unexpanded query.")
	fmt.Fprintf(&sb, "sqe_expansion_fallbacks_total %d\n", s.degFallbacks.Load())

	// Fault-injection counters, present only while a chaos registry is
	// armed (fault.Arm); production serves without one and omits the
	// family entirely.
	if reg := fault.Armed(); reg != nil {
		stats := reg.Stats()
		counter("sqe_fault_injected_total", "Faults (errors + panics) injected by the armed fault registry, by point.")
		for _, p := range fault.Points() {
			if st, ok := stats[p]; ok {
				fmt.Fprintf(&sb, "sqe_fault_injected_total{point=%q} %d\n", string(p), st.Faults())
			}
		}
		counter("sqe_fault_delays_total", "Latency injections by the armed fault registry, by point.")
		for _, p := range fault.Points() {
			if st, ok := stats[p]; ok {
				fmt.Fprintf(&sb, "sqe_fault_delays_total{point=%q} %d\n", string(p), st.Delays)
			}
		}
	}

	counter("sqe_pipeline_queries_total", "SQE pipeline executions served.")
	fmt.Fprintf(&sb, "sqe_pipeline_queries_total %d\n", ps.Queries)
	counter("sqe_pipeline_retrievals_total", "Index retrievals (SQE_C runs three per query).")
	fmt.Fprintf(&sb, "sqe_pipeline_retrievals_total %d\n", ps.Retrievals)
	counter("sqe_pipeline_features_total", "Expansion features produced by motif search.")
	fmt.Fprintf(&sb, "sqe_pipeline_features_total %d\n", ps.Features)
	counter("sqe_pipeline_stage_seconds_total", "Cumulative wall-clock per pipeline stage.")
	for _, st := range []struct {
		name string
		d    time.Duration
	}{
		{"entity_link", ps.Stages.EntityLink},
		{"motif_search", ps.Stages.MotifSearch},
		{"query_build", ps.Stages.QueryBuild},
		{"retrieval", ps.Stages.Retrieval},
	} {
		fmt.Fprintf(&sb, "sqe_pipeline_stage_seconds_total{stage=%q} %g\n", st.name, st.d.Seconds())
	}

	counter("sqe_search_leaves_total", "Flattened query leaves scored.")
	fmt.Fprintf(&sb, "sqe_search_leaves_total %d\n", ps.Search.Leaves)
	counter("sqe_search_candidates_examined_total", "Distinct documents scored.")
	fmt.Fprintf(&sb, "sqe_search_candidates_examined_total %d\n", ps.Search.CandidatesExamined)
	counter("sqe_search_postings_advanced_total", "Posting-cursor advances across all leaves.")
	fmt.Fprintf(&sb, "sqe_search_postings_advanced_total %d\n", ps.Search.PostingsAdvanced)
	counter("sqe_search_docs_skipped_total", "Postings entries skipped by score-safe dynamic pruning without scoring their documents.")
	fmt.Fprintf(&sb, "sqe_search_docs_skipped_total %d\n", ps.Search.DocsSkipped)
	counter("sqe_search_bound_evaluations_total", "Score-bound tests against the top-k threshold (per-candidate checks plus leaf re-partitions).")
	fmt.Fprintf(&sb, "sqe_search_bound_evaluations_total %d\n", ps.Search.BoundEvaluations)
	counter("sqe_search_block_bound_evaluations_total", "Block-Max directory lookups inside the candidate filter.")
	fmt.Fprintf(&sb, "sqe_search_block_bound_evaluations_total %d\n", ps.Search.BlockBoundEvaluations)
	counter("sqe_search_heap_pushes_total", "Insertions into the bounded top-k heap.")
	fmt.Fprintf(&sb, "sqe_search_heap_pushes_total %d\n", ps.Search.HeapPushes)
	counter("sqe_search_heap_evictions_total", "Candidates that displaced the current k-th best.")
	fmt.Fprintf(&sb, "sqe_search_heap_evictions_total %d\n", ps.Search.HeapEvictions)

	// Per-shard evaluator breakdown; present only on sharded engines.
	// Each family emits its series in ascending shard index — one family
	// at a time, never interleaved across families — so successive
	// scrapes diff line-for-line deterministically.
	if len(ps.Search.Shards) > 0 {
		shardFamily := func(name, help string, value func(sh sqe.ShardSearchStats) string) {
			counter(name, help)
			for i := 0; i < len(ps.Search.Shards); i++ {
				fmt.Fprintf(&sb, "%s{shard=\"%d\"} %s\n", name, i, value(ps.Search.Shards[i]))
			}
		}
		shardFamily("sqe_search_shard_seconds_total", "Cumulative evaluation wall-clock per index shard.",
			func(sh sqe.ShardSearchStats) string { return fmt.Sprintf("%g", sh.Elapsed.Seconds()) })
		shardFamily("sqe_search_shard_candidates_examined_total", "Distinct documents scored per index shard.",
			func(sh sqe.ShardSearchStats) string { return fmt.Sprintf("%d", sh.CandidatesExamined) })
		shardFamily("sqe_search_shard_postings_advanced_total", "Posting-cursor advances per index shard.",
			func(sh sqe.ShardSearchStats) string { return fmt.Sprintf("%d", sh.PostingsAdvanced) })
		shardFamily("sqe_search_shard_docs_skipped_total", "Postings entries skipped by pruning per index shard.",
			func(sh sqe.ShardSearchStats) string { return fmt.Sprintf("%d", sh.DocsSkipped) })
	}

	// Live (segmented) index state; present only on engines built with
	// NewLiveEngine. The gauges mirror the /v1/ingest response fields so
	// operators can watch segment growth and tombstone accumulation (and
	// alert on a stuck compactor) without issuing work requests.
	if ls, ok := s.cfg.Engine.LiveStats(); ok {
		gauge("sqe_live_segments", "Committed on-disk segments of the live index.")
		fmt.Fprintf(&sb, "sqe_live_segments %d\n", ls.DiskSegments)
		gauge("sqe_live_buffer_docs", "Documents in the unflushed in-memory buffer.")
		fmt.Fprintf(&sb, "sqe_live_buffer_docs %d\n", ls.BufferDocs)
		gauge("sqe_live_docs", "Searchable (non-tombstoned) documents in the live index.")
		fmt.Fprintf(&sb, "sqe_live_docs %d\n", ls.LiveDocs)
		gauge("sqe_live_tombstones", "Deleted-but-not-yet-compacted documents.")
		fmt.Fprintf(&sb, "sqe_live_tombstones %d\n", ls.Tombstones)
		counter("sqe_live_ingested_total", "Documents ingested over the live index's lifetime.")
		fmt.Fprintf(&sb, "sqe_live_ingested_total %d\n", ls.Ingested)
		counter("sqe_live_deleted_total", "Documents deleted over the live index's lifetime.")
		fmt.Fprintf(&sb, "sqe_live_deleted_total %d\n", ls.Deleted)
		counter("sqe_live_flushes_total", "Buffer flushes committed to disk segments.")
		fmt.Fprintf(&sb, "sqe_live_flushes_total %d\n", ls.Flushes)
		counter("sqe_live_compactions_total", "Segment compactions completed.")
		fmt.Fprintf(&sb, "sqe_live_compactions_total %d\n", ls.Compactions)
	}

	if cs, ok := s.cfg.Engine.ExpansionCacheStats(); ok {
		counter("sqe_expansion_cache_hits_total", "Expansion cache hits.")
		fmt.Fprintf(&sb, "sqe_expansion_cache_hits_total %d\n", cs.Hits)
		counter("sqe_expansion_cache_misses_total", "Expansion cache misses.")
		fmt.Fprintf(&sb, "sqe_expansion_cache_misses_total %d\n", cs.Misses)
		counter("sqe_expansion_cache_evictions_total", "Expansion cache LRU evictions.")
		fmt.Fprintf(&sb, "sqe_expansion_cache_evictions_total %d\n", cs.Evictions)
		gauge("sqe_expansion_cache_entries", "Expansions currently cached.")
		fmt.Fprintf(&sb, "sqe_expansion_cache_entries %d\n", cs.Entries)
	}

	// Precomputed expansion store (WithPrecomputedExpansions); present
	// whenever a store was attached, including one dropped as stale —
	// the staleness gauge is precisely what an operator needs to see.
	if ss, ok := s.cfg.Engine.ExpansionStoreStats(); ok {
		counter("sqe_expansion_store_hits_total", "Precomputed expansion store hits.")
		fmt.Fprintf(&sb, "sqe_expansion_store_hits_total %d\n", ss.Hits)
		counter("sqe_expansion_store_misses_total", "Precomputed expansion store misses.")
		fmt.Fprintf(&sb, "sqe_expansion_store_misses_total %d\n", ss.Misses)
		gauge("sqe_expansion_store_entries", "Expansions available in the precomputed store.")
		fmt.Fprintf(&sb, "sqe_expansion_store_entries %d\n", ss.Entries)
		stale := 0
		if ss.Stale {
			stale = 1
		}
		gauge("sqe_expansion_store_stale", "1 when the attached store was dropped at boot for a KB content-hash mismatch.")
		fmt.Fprintf(&sb, "sqe_expansion_store_stale %d\n", stale)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(sb.String()))
}

// Pipeline returns a copy of the aggregated pipeline stats served so far
// (what /metrics exports); useful for tests and the -smoke self-check.
func (s *Server) Pipeline() sqe.PipelineStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipeline
}

// Package prf implements pseudo-relevance feedback as the paper's
// Section 4.3 describes it: an adaptation of Lavrenko's relevance model
// [Lavrenko & Croft, SIGIR'01]. The original query Q retrieves a ranked
// list of documents ordered by P(Q|D); the relevance model
//
//	P(w|Q) = Σ_D P(w|D) · P(Q|D) · P(D) / P(Q)
//
// is estimated over the top fbDocs documents (uniform P(D)); the top
// fbTerms concepts by P(w|Q) become the expansion features. With
// OrigWeight = 0 the reformulated query consists of those concepts alone
// (the paper's configuration — which is exactly why PRF collapses on
// collections where the initial ranking is poor); OrigWeight > 0 gives
// the usual RM3 interpolation.
package prf

import (
	"math"
	"sort"

	"repro/internal/search"
)

// Config parameterises the relevance model.
type Config struct {
	// FbDocs is the number of feedback documents (default 10).
	FbDocs int
	// FbTerms is the number of expansion concepts kept (default 20).
	FbTerms int
	// OrigWeight interpolates the original query into the reformulated
	// one: 0 replaces the query with the feedback concepts (paper), 0.5
	// is classic RM3.
	OrigWeight float64
}

// DefaultConfig mirrors the common Indri defaults.
func DefaultConfig() Config { return Config{FbDocs: 10, FbTerms: 20} }

func (c Config) withDefaults() Config {
	if c.FbDocs <= 0 {
		c.FbDocs = 10
	}
	if c.FbTerms <= 0 {
		c.FbTerms = 20
	}
	return c
}

// WeightedTerm is a feedback concept with its relevance-model
// probability.
type WeightedTerm struct {
	Term   string
	Weight float64
}

// RelevanceModel estimates P(w|Q) over the top feedback documents of q
// and returns the top fbTerms concepts by weight. It returns nil when
// the query retrieves nothing.
func RelevanceModel(s *search.Searcher, q search.Node, cfg Config) []WeightedTerm {
	cfg = cfg.withDefaults()
	top := s.Search(q, cfg.FbDocs)
	if len(top) == 0 {
		return nil
	}
	// Convert log P(Q|D) scores into normalised probabilities.
	maxScore := top[0].Score
	probs := make([]float64, len(top))
	var z float64
	for i, r := range top {
		probs[i] = math.Exp(r.Score - maxScore)
		z += probs[i]
	}
	ix := s.Index()
	model := make(map[int32]float64)
	for i, r := range top {
		pqd := probs[i] / z
		dl := float64(ix.DocLen(r.Doc))
		if dl == 0 {
			continue
		}
		for _, tf := range ix.DocVector(r.Doc) {
			// Maximum-likelihood P(w|D); the Dirichlet background mass
			// cancels in the top-n cut and only dampens the weights.
			model[tf.Term] += pqd * float64(tf.Freq) / dl
		}
	}
	terms := make([]WeightedTerm, 0, len(model))
	for tid, w := range model {
		terms = append(terms, WeightedTerm{Term: ix.TermText(tid), Weight: w})
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].Weight != terms[j].Weight {
			return terms[i].Weight > terms[j].Weight
		}
		return terms[i].Term < terms[j].Term
	})
	if len(terms) > cfg.FbTerms {
		terms = terms[:cfg.FbTerms]
	}
	return terms
}

// Reformulate runs the relevance model and builds the reformulated query:
// a #weight over the feedback concepts, optionally interpolated with the
// original query by cfg.OrigWeight. When feedback produces no concepts
// the original query is returned unchanged.
func Reformulate(s *search.Searcher, q search.Node, cfg Config) search.Node {
	terms := RelevanceModel(s, q, cfg)
	if len(terms) == 0 {
		return q
	}
	weights := make([]float64, len(terms))
	nodes := make([]search.Node, len(terms))
	for i, t := range terms {
		weights[i] = t.Weight
		nodes[i] = search.Term{Text: t.Term}
	}
	fb := search.Weight(weights, nodes)
	if cfg.OrigWeight <= 0 {
		return fb
	}
	return search.Weight(
		[]float64{cfg.OrigWeight, 1 - cfg.OrigWeight},
		[]search.Node{q, fb},
	)
}

package prf

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/index"
	"repro/internal/search"
)

func searcher(docs ...string) *search.Searcher {
	b := index.NewBuilder(analysis.Analyzer{})
	for i, d := range docs {
		b.Add("D"+string(rune('a'+i)), d)
	}
	return search.NewSearcher(b.Build())
}

func TestRelevanceModelPicksFeedbackTerms(t *testing.T) {
	s := searcher(
		"query apple banana",
		"query apple cherry",
		"query apple date",
		"unrelated words entirely",
	)
	terms := RelevanceModel(s, search.Term{Text: "query"}, Config{FbDocs: 3, FbTerms: 3})
	if len(terms) != 3 {
		t.Fatalf("terms = %+v", terms)
	}
	// "query" and "apple" appear in every feedback doc and must rank at
	// the top of the model.
	top := map[string]bool{terms[0].Term: true, terms[1].Term: true}
	if !top["query"] || !top["apple"] {
		t.Errorf("top feedback terms = %+v, want query+apple", terms)
	}
	// Weights must be sorted descending.
	for i := 1; i < len(terms); i++ {
		if terms[i-1].Weight < terms[i].Weight {
			t.Errorf("weights not sorted: %+v", terms)
		}
	}
}

func TestRelevanceModelEmptyOnNoResults(t *testing.T) {
	s := searcher("a b c")
	if terms := RelevanceModel(s, search.Term{Text: "zzz"}, DefaultConfig()); terms != nil {
		t.Errorf("expected nil for retrieving nothing, got %+v", terms)
	}
}

func TestReformulateReplaces(t *testing.T) {
	s := searcher("q alpha", "q alpha", "q beta")
	orig := search.Term{Text: "q"}
	node := Reformulate(s, orig, Config{FbDocs: 2, FbTerms: 2})
	str := node.String()
	if !strings.Contains(str, "alpha") {
		t.Errorf("reformulated query %q missing feedback term", str)
	}
	// Pure replacement: the node is a #weight over feedback terms; the
	// original term may appear only as a feedback term itself.
	if !strings.HasPrefix(str, "#weight(") {
		t.Errorf("reformulated query %q should be a #weight", str)
	}
}

func TestReformulateInterpolates(t *testing.T) {
	s := searcher("q alpha", "q alpha")
	orig := search.Term{Text: "q"}
	node := Reformulate(s, orig, Config{FbDocs: 2, FbTerms: 1, OrigWeight: 0.5})
	str := node.String()
	// RM3 form: outer #weight with the original query as one child.
	if !strings.Contains(str, "0.5 q") {
		t.Errorf("interpolated query %q missing original part", str)
	}
}

func TestReformulateFallsBackToOriginal(t *testing.T) {
	s := searcher("a b")
	orig := search.Term{Text: "zzz"}
	node := Reformulate(s, orig, DefaultConfig())
	if node.String() != "zzz" {
		t.Errorf("expected original query back, got %q", node.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.FbDocs != 10 || c.FbTerms != 20 {
		t.Errorf("defaults = %+v", c)
	}
	c = Config{FbDocs: 3, FbTerms: 7}.withDefaults()
	if c.FbDocs != 3 || c.FbTerms != 7 {
		t.Errorf("explicit values overridden: %+v", c)
	}
}

func TestFeedbackFollowsTopDocs(t *testing.T) {
	// The top documents by P(Q|D) dominate the model: a term appearing
	// only in low-ranked feedback docs gets less weight than one in the
	// top doc.
	s := searcher(
		"q q q strongterm",           // ranks first (tf 3, same length)
		"q weakterm filler1 filler2", // lower P(Q|D), same in-doc share
	)
	// A small μ keeps P(Q|D) sensitive to tf on these tiny documents.
	s.Mu = 5
	terms := RelevanceModel(s, search.Term{Text: "q"}, Config{FbDocs: 2, FbTerms: 10})
	var wStrong, wWeak float64
	for _, tm := range terms {
		switch tm.Term {
		case "strongterm":
			wStrong = tm.Weight
		case "weakterm":
			wWeak = tm.Weight
		}
	}
	if wStrong == 0 || wWeak == 0 {
		t.Fatalf("terms missing: %+v", terms)
	}
	if wStrong <= wWeak {
		t.Errorf("strongterm (%f) should outweigh weakterm (%f)", wStrong, wWeak)
	}
}

package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dataset"
	"repro/internal/eval"
)

// SummaryResult reports the full-metric view (MAP, MRR, nDCG@10, Rprec,
// robustness index) of the main runs — measures the paper does not
// print, included because any downstream comparison will ask for them.
type SummaryResult struct {
	Dataset   string
	Summaries []*eval.Summary
	// Robustness is the per-query win/loss index of SQE_C (M) vs QL_Q at
	// P@10.
	Robustness float64
}

// SummaryMetrics computes the extended-metric summary for inst.
func SummaryMetrics(s *Suite, inst *dataset.Instance) *SummaryResult {
	r := s.NewRunner(inst)
	qlq := r.QLQ()
	sqeM := r.SQEC(true)
	sqeA := r.SQEC(false)
	return &SummaryResult{
		Dataset: inst.Name,
		Summaries: []*eval.Summary{
			eval.Summarize("QL_Q", inst.Qrels, qlq),
			eval.Summarize("SQE_C (M)", inst.Qrels, sqeM),
			eval.Summarize("SQE_C (A)", inst.Qrels, sqeA),
		},
		Robustness: eval.RobustnessIndex(inst.Qrels, sqeM, qlq, 10),
	}
}

// String renders the summary.
func (s *SummaryResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extended metrics (%s)\n", s.Dataset)
	fmt.Fprintf(&sb, "%-12s %8s %8s %8s %8s %8s %8s\n", "", "MAP", "MRR", "nDCG@10", "Rprec", "P@10", "R@100")
	for _, sum := range s.Summaries {
		fmt.Fprintf(&sb, "%-12s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			sum.Name, sum.MAP, sum.MRR, sum.NDCG10, sum.RPrec, sum.P[10], sum.Recall[100])
	}
	fmt.Fprintf(&sb, "robustness index SQE_C(M) vs QL_Q at P@10: %+.2f\n", s.Robustness)
	return sb.String()
}

// ExportTREC writes qrels and the principal runs of every dataset in
// TREC format under dir, so results round-trip with the standard
// trec_eval toolchain. Returns the written file names.
func ExportTREC(s *Suite, dir string) ([]string, error) {
	var written []string
	writeFile := func(name string, fn func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}
	for _, inst := range s.Instances() {
		r := s.NewRunner(inst)
		tag := strings.ToLower(strings.ReplaceAll(inst.Name, " ", ""))
		if err := writeFile(tag+".qrels", func(w io.Writer) error {
			return eval.WriteQrelsTREC(w, inst.Qrels)
		}); err != nil {
			return written, err
		}
		runs := map[string]eval.Run{
			"qlq":  r.QLQ(),
			"sqem": r.SQEC(true),
			"sqea": r.SQEC(false),
		}
		for rn, run := range runs {
			run := run
			runTag := tag + "-" + rn
			if err := writeFile(runTag+".run", func(w io.Writer) error {
				return eval.WriteRunTREC(w, run, runTag)
			}); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestShardBench(t *testing.T) {
	s := smallSuite(t)
	res := ShardBench(s, s.ImageCLEF, []int{1, 2, 4}, 10, 1)
	if res.GOMAXPROCS < 1 || res.Queries == 0 {
		t.Fatalf("bad result header: %+v", res)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (S=1 baseline + 2, 4)", len(res.Rows))
	}
	if res.Rows[0].Shards != 1 || res.Rows[0].Speedup != 1 {
		t.Fatalf("first row must be the unsharded baseline: %+v", res.Rows[0])
	}
	for _, row := range res.Rows {
		if !row.Identical {
			t.Fatalf("S=%d rankings diverged from unsharded", row.Shards)
		}
		if row.NsPerQry <= 0 || row.Speedup <= 0 {
			t.Fatalf("S=%d: non-positive measurement %+v", row.Shards, row)
		}
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ShardBenchResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.GOMAXPROCS != res.GOMAXPROCS || len(back.Rows) != len(res.Rows) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if out := res.String(); !strings.Contains(out, "GOMAXPROCS") || !strings.Contains(out, "bit-identical") {
		t.Fatalf("String() missing fields:\n%s", out)
	}
}

package experiments

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/search"
)

func TestModelComparison(t *testing.T) {
	s := smallSuite(t)
	res := ModelComparison(s, s.ImageCLEF)
	if len(res.Table.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	for _, model := range []search.Model{search.ModelDirichlet, search.ModelJelinekMercer, search.ModelBM25} {
		gain, ok := res.Gain[model.String()]
		if !ok {
			t.Fatalf("no gain for %v", model)
		}
		// SQE must improve over the baseline under every retrieval
		// model — the expansion is model-agnostic.
		if gain <= 0 {
			t.Errorf("%v: SQE gain %+.1f%% not positive", model, gain)
		}
	}
	if !strings.Contains(res.String(), "bm25") {
		t.Error("rendering incomplete")
	}
}

func TestCrossKBMining(t *testing.T) {
	s := smallSuite(t)
	res, err := CrossKBMining(s, dataset.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Wikipedia.Scores) == 0 || len(res.Ontology.Scores) == 0 {
		t.Fatal("missing rankings")
	}
	// The paper's conjecture, made concrete: the template structure that
	// works on the Wikipedia-like KB is not the same as on the
	// taxonomy-like KB. Assert a structural difference rather than exact
	// templates: the per-template footprints must differ.
	wiki := map[string]float64{}
	for _, sc := range res.Wikipedia.Scores {
		wiki[sc.Template.String()] = sc.AvgSelected
	}
	differs := false
	for _, sc := range res.Ontology.Scores {
		w := wiki[sc.Template.String()]
		if w == 0 && sc.AvgSelected == 0 {
			continue
		}
		ratio := sc.AvgSelected / maxf(w, 0.001)
		if ratio < 0.5 || ratio > 2 {
			differs = true
		}
	}
	if !differs {
		t.Error("the two KB profiles produced structurally identical template footprints")
	}
	if !strings.Contains(res.String(), "Ontology-like") {
		t.Error("rendering incomplete")
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

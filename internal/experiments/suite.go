// Package experiments wires the substrates together and regenerates
// every table and figure of the paper's evaluation (Section 4). Each
// experiment returns a typed result whose String() renders rows shaped
// like the paper's, so cmd/sqe-bench output can be eyeballed against the
// original.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/entitylink"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/motif"
	"repro/internal/prf"
	"repro/internal/search"
	"repro/internal/wikigen"
)

// RunDepth is the ranked-list depth every run is evaluated at (the
// paper's deepest reported top).
const RunDepth = 1000

// Suite is a fully generated experimental environment: the KB world, the
// three dataset instances and the automatic entity linker.
type Suite struct {
	World     *wikigen.World
	ImageCLEF *dataset.Instance
	CHiC2012  *dataset.Instance
	CHiC2013  *dataset.Instance
	Linker    *entitylink.Linker
}

// NewSuite generates the environment at the given scale. Generation is
// deterministic; at ScaleDefault it takes a few seconds, at ScaleSmall
// well under a second.
func NewSuite(s dataset.Scale) (*Suite, error) {
	cfg := wikigen.DefaultConfig()
	if s == dataset.ScaleSmall {
		cfg = wikigen.SmallConfig()
	}
	world, err := wikigen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	ic, err := dataset.BuildImageCLEF(world, s)
	if err != nil {
		return nil, err
	}
	c12, c13, err := dataset.BuildCHiC(world, s)
	if err != nil {
		return nil, err
	}
	return &Suite{
		World:     world,
		ImageCLEF: ic,
		CHiC2012:  c12,
		CHiC2013:  c13,
		Linker:    dataset.BuildLinker(world, dataset.DefaultLinkerOptions()),
	}, nil
}

// Instances returns the three instances in the paper's order.
func (s *Suite) Instances() []*dataset.Instance {
	return []*dataset.Instance{s.ImageCLEF, s.CHiC2012, s.CHiC2013}
}

// Runner evaluates runs over one instance.
type Runner struct {
	Inst     *dataset.Instance
	Searcher *search.Searcher
	Expander *core.Expander
	Linker   *entitylink.Linker

	// entity cache per (query, manual) so repeated runs agree and the
	// automatic linker is invoked once per query.
	entityCache map[entityKey][]kb.NodeID
}

type entityKey struct {
	id     string
	manual bool
}

// NewRunner builds a Runner for inst using the suite's linker.
func (s *Suite) NewRunner(inst *dataset.Instance) *Runner {
	return &Runner{
		Inst:        inst,
		Searcher:    search.NewSearcher(inst.Index),
		Expander:    core.NewExpander(s.World.Graph, analysis.Standard()),
		Linker:      s.Linker,
		entityCache: make(map[entityKey][]kb.NodeID),
	}
}

// Entities returns the query nodes for q: the manually selected entities
// (the (M) runs) or the automatic linker's output over the query text
// (the (A) runs).
func (r *Runner) Entities(q *dataset.Query, manual bool) []kb.NodeID {
	key := entityKey{q.ID, manual}
	if e, ok := r.entityCache[key]; ok {
		return e
	}
	var e []kb.NodeID
	if manual {
		e = q.Entities
	} else {
		e = r.Linker.LinkArticles(q.Text)
	}
	r.entityCache[key] = e
	return e
}

// run executes one query builder over every query of the instance.
func (r *Runner) run(build func(q *dataset.Query) search.Node) eval.Run {
	out := make(eval.Run, len(r.Inst.Queries))
	for qi := range r.Inst.Queries {
		q := &r.Inst.Queries[qi]
		node := build(q)
		if node == nil || search.IsEmpty(node) {
			out[q.ID] = nil
			continue
		}
		out[q.ID] = core.ResultNames(r.Searcher.Search(node, RunDepth))
	}
	return out
}

// QLQ is the non-expanded user query baseline.
func (r *Runner) QLQ() eval.Run {
	return r.run(func(q *dataset.Query) search.Node {
		return r.Expander.QLQuery(q.Text)
	})
}

// QLE queries with the query entities only.
func (r *Runner) QLE(manual bool) eval.Run {
	return r.run(func(q *dataset.Query) search.Node {
		return r.Expander.QLEntities(r.Entities(q, manual))
	})
}

// QLQE combines user query and entities.
func (r *Runner) QLQE(manual bool) eval.Run {
	return r.run(func(q *dataset.Query) search.Node {
		return r.Expander.QLQueryEntities(q.Text, r.Entities(q, manual))
	})
}

// QX queries with expansion features alone (no user query, no entities);
// features come from the combined motif set.
func (r *Runner) QX(manual bool) eval.Run {
	return r.run(func(q *dataset.Query) search.Node {
		qg := r.Expander.BuildQueryGraph(r.Entities(q, manual), motif.SetTS)
		return r.Expander.QLExpansionOnly(qg)
	})
}

// SQE runs the full three-part expanded query with the given motif set.
func (r *Runner) SQE(set motif.Set, manual bool) eval.Run {
	return r.run(func(q *dataset.Query) search.Node {
		qg := r.Expander.BuildQueryGraph(r.Entities(q, manual), set)
		return r.Expander.BuildQuery(q.Text, qg)
	})
}

// SQEUB runs the upper bound: expansion features from the ground-truth
// query graphs instead of motif search.
func (r *Runner) SQEUB() eval.Run {
	return r.run(func(q *dataset.Query) search.Node {
		qg := core.GroundTruthGraph(q.Entities, r.Inst.GroundTruth[q.ID])
		return r.Expander.BuildQuery(q.Text, qg)
	})
}

// SQEC runs the paper's combined configuration: ranks 1–5 from SQE_T,
// 6–200 from SQE_T&S, the rest from SQE_S (Section 2.2.1 / 4.1).
func (r *Runner) SQEC(manual bool) eval.Run {
	runT := r.SQE(motif.SetT, manual)
	runTS := r.SQE(motif.SetTS, manual)
	runS := r.SQE(motif.SetS, manual)
	out := make(eval.Run, len(runT))
	for id := range runT {
		out[id] = core.SpliceC(RunDepth, runT[id], runTS[id], runS[id])
	}
	return out
}

// PRFRun applies pure relevance-model feedback (the paper's PRF
// configuration) on top of a base query builder.
func (r *Runner) PRFRun(cfg prf.Config, build func(q *dataset.Query) search.Node) eval.Run {
	return r.run(func(q *dataset.Query) search.Node {
		base := build(q)
		if base == nil || search.IsEmpty(base) {
			return nil
		}
		return prf.Reformulate(r.Searcher, base, cfg)
	})
}

// SQECPRF runs SQE∘PRF: each of the three SQE queries is PRF-reformulated
// before retrieval and the three result lists are spliced as in SQE_C.
func (r *Runner) SQECPRF(cfg prf.Config, manual bool) eval.Run {
	runOne := func(set motif.Set) eval.Run {
		return r.PRFRun(cfg, func(q *dataset.Query) search.Node {
			qg := r.Expander.BuildQueryGraph(r.Entities(q, manual), set)
			return r.Expander.BuildQuery(q.Text, qg)
		})
	}
	runT := runOne(motif.SetT)
	runTS := runOne(motif.SetTS)
	runS := runOne(motif.SetS)
	out := make(eval.Run, len(runT))
	for id := range runT {
		out[id] = core.SpliceC(RunDepth, runT[id], runTS[id], runS[id])
	}
	return out
}

// ExpansionTime measures the wall-clock time spent building the query
// graphs of every query with the given motif set (paper Table 4's
// SQE_T/SQE_T&S/SQE_S rows).
func (r *Runner) ExpansionTime(set motif.Set, manual bool) time.Duration {
	start := time.Now()
	for qi := range r.Inst.Queries {
		q := &r.Inst.Queries[qi]
		_ = r.Expander.BuildQueryGraph(r.Entities(q, manual), set)
	}
	return time.Since(start)
}

// TotalTime measures the whole SQE_C pipeline end to end: entity lookup,
// three expansions, three retrievals and splicing (Table 4's Total Time
// row).
func (r *Runner) TotalTime(manual bool) time.Duration {
	start := time.Now()
	_ = r.SQEC(manual)
	return time.Since(start)
}

// Evaluate is a convenience wrapper over eval.Evaluate.
func (r *Runner) Evaluate(name string, run eval.Run) *eval.Report {
	return eval.Evaluate(name, r.Inst.Qrels, run)
}

// describe asserts a suite invariant with a clear panic; used by
// experiment constructors.
func describe(cond bool, msg string, args ...any) {
	if !cond {
		panic("experiments: " + fmt.Sprintf(msg, args...))
	}
}

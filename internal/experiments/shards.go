package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/motif"
	"repro/internal/search"
)

// ShardBenchRow is one shard count's measurement.
type ShardBenchRow struct {
	Shards    int     `json:"shards"`
	NsPerQry  float64 `json:"ns_per_query"`
	Speedup   float64 `json:"speedup_vs_1"`
	Identical bool    `json:"identical_to_unsharded"`
}

// ShardBenchResult reports sharded-retrieval throughput on the fully
// expanded SQE_T&S query workload of one dataset instance.
//
// GOMAXPROCS is part of the result on purpose: shard fan-out buys
// wall-clock only when the runtime has cores to spread the shards over.
// On a single-core runner every shard count serialises onto one thread
// and Speedup hovers around (slightly below) 1.0 from coordination
// overhead — report the numbers honestly rather than asserting a local
// speedup.
type ShardBenchResult struct {
	Dataset    string          `json:"dataset"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	K          int             `json:"k"`
	Reps       int             `json:"reps"`
	Queries    int             `json:"queries"`
	Rows       []ShardBenchRow `json:"rows"`
}

// ShardBench times top-k retrieval of every query's expanded SQE_T&S
// form at each shard count, reps passes per count. Shard count 1 (the
// plain unsharded Searcher) is always measured first as the speedup
// baseline, whether or not it appears in shardCounts; every sharded
// configuration is also checked for bit-identical rankings against it.
func ShardBench(s *Suite, inst *dataset.Instance, shardCounts []int, k, reps int) *ShardBenchResult {
	if k <= 0 {
		k = 10
	}
	if reps <= 0 {
		reps = 3
	}
	r := s.NewRunner(inst)
	queries := inst.Queries
	nodes := make([]search.Node, len(queries))
	for qi := range queries {
		q := &queries[qi]
		qg := r.Expander.BuildQueryGraph(r.Entities(q, true), motif.SetTS)
		nodes[qi] = r.Expander.BuildQuery(q.Text, qg)
	}

	timeAll := func(run func(node search.Node) []search.Result) (float64, [][]search.Result) {
		// One warm pass populates caches and captures the rankings for
		// the identity check; the timed passes follow.
		got := make([][]search.Result, len(nodes))
		for i, n := range nodes {
			got[i] = run(n)
		}
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for _, n := range nodes {
				_ = run(n)
			}
		}
		total := float64(time.Since(start))
		return total / float64(reps*len(nodes)), got
	}

	baseNs, baseRes := timeAll(func(n search.Node) []search.Result {
		return r.Searcher.Search(n, k)
	})

	out := &ShardBenchResult{
		Dataset:    inst.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		K:          k,
		Reps:       reps,
		Queries:    len(queries),
		Rows:       []ShardBenchRow{{Shards: 1, NsPerQry: baseNs, Speedup: 1, Identical: true}},
	}
	for _, sc := range shardCounts {
		if sc <= 1 {
			continue
		}
		ss := search.NewShardedSearcher(index.NewSharded(inst.Index, sc))
		ns, res := timeAll(func(n search.Node) []search.Result {
			return ss.Search(n, k)
		})
		identical := true
		for i := range res {
			if len(res[i]) != len(baseRes[i]) {
				identical = false
				break
			}
			for j := range res[i] {
				if res[i][j] != baseRes[i][j] {
					identical = false
					break
				}
			}
		}
		out.Rows = append(out.Rows, ShardBenchRow{
			Shards: sc, NsPerQry: ns, Speedup: baseNs / ns, Identical: identical,
		})
	}
	return out
}

// JSON renders the result as indented JSON (the BENCH_shards.json
// artifact written by `make bench-shards`).
func (r *ShardBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func (r *ShardBenchResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sharded retrieval, %s (%d queries, k=%d, %d reps, GOMAXPROCS=%d):\n",
		r.Dataset, r.Queries, r.K, r.Reps, r.GOMAXPROCS)
	for _, row := range r.Rows {
		mark := "bit-identical"
		if !row.Identical {
			mark = "RANKINGS DIVERGED"
		}
		fmt.Fprintf(&sb, "  S=%-2d %10.0f ns/query  speedup %.2fx  %s\n",
			row.Shards, row.NsPerQry, row.Speedup, mark)
	}
	return sb.String()
}

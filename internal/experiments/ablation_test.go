package experiments

import (
	"strings"
	"testing"

	"repro/internal/motif"
)

func TestAblations(t *testing.T) {
	s := smallSuite(t)
	res := Ablations(s, s.ImageCLEF)
	names := []string{"full", "uniform-weights", "single-link", "no-categories", "splice-2/50", "mu-250", "uw-titles"}
	if len(res.Table.Rows) != len(names) {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	for _, n := range names {
		if res.Reports[n] == nil {
			t.Fatalf("missing report %s", n)
		}
	}
	// The central structural claims: relaxing the double-link condition
	// or dropping categories must not beat the full configuration at
	// shallow tops (they add noisy expansion features).
	meanShallow := func(name string) float64 {
		rep := res.Reports[name]
		return (rep.Mean[5] + rep.Mean[10] + rep.Mean[20]) / 3
	}
	full := meanShallow("full")
	for _, weakened := range []string{"single-link", "no-categories"} {
		if got := meanShallow(weakened); got > full*1.1 {
			t.Errorf("%s (%.3f) should not beat full (%.3f)", weakened, got, full)
		}
	}
	if !strings.Contains(res.Table.String(), "uniform-weights") {
		t.Error("rendering incomplete")
	}
}

func TestMuSweep(t *testing.T) {
	s := smallSuite(t)
	res := MuSweep(s, s.ImageCLEF, []float64{100, 2500})
	if len(res.P10) != 2 {
		t.Fatal("sweep incomplete")
	}
	for _, p := range res.P10 {
		if p < 0 || p > 1 {
			t.Fatalf("precision out of range: %v", res.P10)
		}
	}
	if res.String() == "" {
		t.Error("rendering empty")
	}
}

func TestMineMotifsRecoversPaperMotifs(t *testing.T) {
	s := smallSuite(t)
	res := MineMotifs(s, s.ImageCLEF)
	if len(res.Scores) == 0 {
		t.Fatal("no template scores")
	}
	// Among the top half of templates there must be at least one with
	// reciprocal links and a category condition — i.e. the miner finds
	// the paper's motif family in the synthetic world.
	top := res.Scores[:len(res.Scores)/2]
	found := false
	for _, sc := range top {
		if sc.Template.Link == motif.LinkReciprocal && sc.Template.Cat != motif.CatNone {
			found = true
		}
	}
	if !found {
		t.Errorf("no reciprocal+category template in the top half: %+v", top)
	}
	if !strings.Contains(res.String(), "reciprocal") {
		t.Error("rendering incomplete")
	}
}

func TestMeasureParallelSpeedup(t *testing.T) {
	s := smallSuite(t)
	res := MeasureParallelSpeedup(s, s.ImageCLEF, 4, 2)
	if len(res.Workers) == 0 || len(res.Workers) != len(res.Speedups) {
		t.Fatalf("speedup result malformed: %+v", res)
	}
	if res.Workers[0] != 1 {
		t.Error("first measurement should be single-worker")
	}
	for _, sp := range res.Speedups {
		if sp <= 0 {
			t.Errorf("non-positive speedup: %+v", res.Speedups)
		}
	}
}

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/kb"
	"repro/internal/motif"
)

// expansionBenchSets are the motif configurations measured: SQE_C's
// three runs, the same set cmd/sqe-precompute materialises.
var expansionBenchSets = []motif.Set{motif.SetT, motif.SetTS, motif.SetS}

// ExpansionBenchResult compares the three ways a serving engine can
// answer an expansion — a cold motif search, a warm sharded-LRU hit,
// and a precomputed-store lookup — on one dataset's manual-entity
// workload. Timings are single-threaded wall-clock per expansion;
// Identical asserts both lookup paths returned graphs byte-identical
// (reflect.DeepEqual: nodes, features, weights, ordering) to the cold
// build on every (entity set, motif set) pair.
type ExpansionBenchResult struct {
	Dataset    string `json:"dataset"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Reps       int    `json:"reps"`
	// Workload is the number of (entity set, motif set) pairs measured;
	// Entries and StoreBytes describe the store built from them.
	Workload   int   `json:"workload"`
	Entries    int   `json:"store_entries"`
	StoreBytes int64 `json:"store_bytes"`
	// Ns* are nanoseconds per expansion for each serving path.
	NsCold    float64 `json:"ns_per_expansion_cold"`
	NsWarmLRU float64 `json:"ns_per_expansion_warm_lru"`
	NsStore   float64 `json:"ns_per_expansion_store"`
	// Speedups are cold/<path>; wall-clock, so the regression gate holds
	// them to a floor rather than an exact value.
	SpeedupLRUVsCold   float64 `json:"speedup_lru_vs_cold"`
	SpeedupStoreVsCold float64 `json:"speedup_store_vs_cold"`
	// Identical is absolute: any divergence is a correctness bug, never
	// noise (cmd/bench-check fails the build on it).
	Identical bool `json:"identical_to_cold"`
}

// ExpansionBench measures cold vs. warm-LRU vs. precomputed-store
// expansion latency on inst's manual-entity workload. The store is
// round-tripped through its binary encoding (write + read back), so the
// measured lookups — and the identity check — exercise exactly what a
// rebooted server would serve. Lookup passes run lookupScale times more
// iterations than cold passes: a hash lookup is ~ns-scale and needs the
// extra iterations for a stable per-op figure.
func ExpansionBench(s *Suite, inst *dataset.Instance, reps int) *ExpansionBenchResult {
	if reps <= 0 {
		reps = 3
	}
	const lookupScale = 50
	r := s.NewRunner(inst)

	type pair struct {
		nodes []kb.NodeID
		set   motif.Set
	}
	var workload []pair
	var entitySets [][]kb.NodeID
	for qi := range inst.Queries {
		q := &inst.Queries[qi]
		nodes := r.Entities(q, true)
		if len(nodes) == 0 {
			continue
		}
		entitySets = append(entitySets, nodes)
		for _, set := range expansionBenchSets {
			workload = append(workload, pair{nodes, set})
		}
	}

	out := &ExpansionBenchResult{
		Dataset:    inst.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Workload:   len(workload),
		Identical:  true,
	}

	// Reference graphs: one cold build per pair, the byte-identity
	// baseline for both lookup paths.
	cold := make([]core.QueryGraph, len(workload))
	for i, p := range workload {
		cold[i] = r.Expander.BuildQueryGraph(p.nodes, p.set)
	}

	// Precomputed store, round-tripped through the binary format.
	entries := core.PrecomputeEntries(r.Expander, entitySets, expansionBenchSets)
	var buf bytes.Buffer
	if err := core.WriteStore(&buf, kb.ContentHash(s.World.Graph), entries); err != nil {
		// The in-memory writer only fails on oversized records, which a
		// generated workload cannot produce.
		panic(fmt.Sprintf("experiments: write store: %v", err))
	}
	out.Entries = len(entries)
	out.StoreBytes = int64(buf.Len())
	store, err := core.ReadStore(&buf)
	if err != nil {
		panic(fmt.Sprintf("experiments: read store: %v", err))
	}

	// Warm LRU: capacity comfortably above the workload, prefilled.
	cache := core.NewExpansionCache(4 * len(entries))
	for _, p := range workload {
		r.Expander.BuildQueryGraphCached(p.nodes, p.set, cache)
	}

	for i, p := range workload {
		if !reflect.DeepEqual(cold[i], r.Expander.BuildQueryGraphCached(p.nodes, p.set, cache)) {
			out.Identical = false
		}
		if !reflect.DeepEqual(cold[i], r.Expander.BuildQueryGraphStored(p.nodes, p.set, nil, store)) {
			out.Identical = false
		}
	}

	time1 := func(passes int, f func(p pair)) float64 {
		start := time.Now()
		for rep := 0; rep < passes; rep++ {
			for _, p := range workload {
				f(p)
			}
		}
		return float64(time.Since(start)) / float64(passes*len(workload))
	}
	out.NsCold = time1(reps, func(p pair) {
		_ = r.Expander.BuildQueryGraph(p.nodes, p.set)
	})
	out.NsWarmLRU = time1(reps*lookupScale, func(p pair) {
		_ = r.Expander.BuildQueryGraphCached(p.nodes, p.set, cache)
	})
	out.NsStore = time1(reps*lookupScale, func(p pair) {
		_ = r.Expander.BuildQueryGraphStored(p.nodes, p.set, nil, store)
	})
	if out.NsWarmLRU > 0 {
		out.SpeedupLRUVsCold = out.NsCold / out.NsWarmLRU
	}
	if out.NsStore > 0 {
		out.SpeedupStoreVsCold = out.NsCold / out.NsStore
	}
	return out
}

// JSON renders the result as indented JSON (the BENCH_expansion.json
// artifact written by `make bench-expansion`).
func (r *ExpansionBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func (r *ExpansionBenchResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "expansion serving paths, %s (%d pairs, %d store entries, %d bytes, %d reps, GOMAXPROCS=%d):\n",
		r.Dataset, r.Workload, r.Entries, r.StoreBytes, r.Reps, r.GOMAXPROCS)
	mark := "bit-identical"
	if !r.Identical {
		mark = "GRAPHS DIVERGED"
	}
	fmt.Fprintf(&sb, "  cold motif search %9.0f ns/expansion\n", r.NsCold)
	fmt.Fprintf(&sb, "  warm LRU hit      %9.0f ns/expansion (%.1fx vs cold)\n", r.NsWarmLRU, r.SpeedupLRUVsCold)
	fmt.Fprintf(&sb, "  precomputed store %9.0f ns/expansion (%.1fx vs cold)  %s\n", r.NsStore, r.SpeedupStoreVsCold, mark)
	return sb.String()
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/motif"
)

// AblationResult reports mean precision for a set of design-choice
// ablations of SQE (DESIGN.md §5), all on one dataset with manual
// entities and the combined motif set so differences isolate the ablated
// choice.
type AblationResult struct {
	Dataset string
	Table   PrecisionTable
	Reports map[string]*eval.Report
}

// ablationTops focuses on the tops where the design choices bite.
var ablationTops = []int{5, 10, 20, 100, 1000}

// Ablations runs the ablation suite on inst:
//
//	full            — SQE_T&S as evaluated everywhere else
//	uniform-weights — expansion features weighted 1 instead of |m_a|
//	single-link     — motifs without the double-link requirement
//	no-categories   — motifs without the category conditions
//	splice-2/50     — SQE_C with cut points 2 and 50 instead of 5 and 200
//	mu-250          — retrieval with Dirichlet μ=250 instead of 2500
//	uw-titles       — titles matched as unordered windows (#uwN, slack 2)
//	                  instead of exact phrases
func Ablations(s *Suite, inst *dataset.Instance) *AblationResult {
	res := &AblationResult{
		Dataset: inst.Name,
		Table: PrecisionTable{
			Title: fmt.Sprintf("Ablations (%s): SQE design choices", inst.Name),
			Tops:  ablationTops,
		},
		Reports: map[string]*eval.Report{},
	}
	add := func(name string, run eval.Run) {
		rep := eval.Evaluate(name, inst.Qrels, run)
		res.Reports[name] = rep
		res.Table.Rows = append(res.Table.Rows, rowFromReport(name, rep, nil, ablationTops))
	}

	// Full configuration.
	r := s.NewRunner(inst)
	add("full", r.SQE(motif.SetTS, true))

	// Uniform feature weights.
	r = s.NewRunner(inst)
	r.Expander.UniformFeatureWeights = true
	add("uniform-weights", r.SQE(motif.SetTS, true))

	// Single-link motifs.
	r = s.NewRunner(inst)
	r.Expander.Matcher().RequireReciprocal = false
	add("single-link", r.SQE(motif.SetTS, true))

	// No category conditions.
	r = s.NewRunner(inst)
	r.Expander.Matcher().UseCategories = false
	add("no-categories", r.SQE(motif.SetTS, true))

	// Alternative SQE_C splice cuts.
	r = s.NewRunner(inst)
	runT := r.SQE(motif.SetT, true)
	runTS := r.SQE(motif.SetTS, true)
	runS := r.SQE(motif.SetS, true)
	alt := make(eval.Run, len(runT))
	for id := range runT {
		alt[id] = core.Splice(RunDepth,
			core.Segment{Run: runT[id], Upto: 2},
			core.Segment{Run: runTS[id], Upto: 50},
			core.Segment{Run: runS[id]},
		)
	}
	add("splice-2/50", alt)

	// Small Dirichlet μ.
	r = s.NewRunner(inst)
	r.Searcher.Mu = 250
	add("mu-250", r.SQE(motif.SetTS, true))

	// Unordered windows (slack 2) instead of exact title phrases.
	r = s.NewRunner(inst)
	r.Expander.TitleWindowSlack = 2
	add("uw-titles", r.SQE(motif.SetTS, true))

	return res
}

// MuSweepResult reports the retrieval substrate's sensitivity to the
// Dirichlet smoothing parameter under the full SQE_T&S query.
type MuSweepResult struct {
	Dataset string
	Mus     []float64
	// P10[i] is mean P@10 at Mus[i].
	P10 []float64
}

// MuSweep evaluates a μ grid.
func MuSweep(s *Suite, inst *dataset.Instance, mus []float64) *MuSweepResult {
	res := &MuSweepResult{Dataset: inst.Name, Mus: mus}
	for _, mu := range mus {
		r := s.NewRunner(inst)
		r.Searcher.Mu = mu
		run := r.SQE(motif.SetTS, true)
		res.P10 = append(res.P10, eval.MeanPrecisionAt(inst.Qrels, run, 10))
	}
	return res
}

// String renders the sweep.
func (m *MuSweepResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dirichlet μ sweep (%s), SQE_T&S\n", m.Dataset)
	for i, mu := range m.Mus {
		fmt.Fprintf(&sb, "  μ=%-8.0f P@10=%.3f\n", mu, m.P10[i])
	}
	return sb.String()
}

// ParallelSpeedup measures wall-clock speedup of concurrent query-graph
// construction (the paper's parallelisation remark) on inst.
type ParallelSpeedup struct {
	Workers  []int
	Speedups []float64
}

// MeasureParallelSpeedup expands every query's graph with 1..maxWorkers
// workers and reports speedup over the single-worker run. Needs enough
// repetitions to be stable; callers on tiny graphs should treat results
// as smoke numbers.
func MeasureParallelSpeedup(s *Suite, inst *dataset.Instance, maxWorkers, reps int) *ParallelSpeedup {
	r := s.NewRunner(inst)
	nodeSets := make([][]kb.NodeID, 0, len(inst.Queries))
	for qi := range inst.Queries {
		nodeSets = append(nodeSets, r.Entities(&inst.Queries[qi], true))
	}
	timeFor := func(workers int) float64 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			r.Expander.BuildQueryGraphs(nodeSets, motif.SetTS, workers)
		}
		return float64(time.Since(start))
	}
	base := timeFor(1)
	out := &ParallelSpeedup{}
	for w := 1; w <= maxWorkers; w *= 2 {
		out.Workers = append(out.Workers, w)
		out.Speedups = append(out.Speedups, base/timeFor(w))
	}
	return out
}

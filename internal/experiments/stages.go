package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/motif"
)

// StageProfileResult is the per-stage cost attribution of one dataset's
// full SQE_C workload (every query, all three motif sets) — the
// instrumented refinement of Table 4's two-row timing: instead of
// expansion vs. total, the pipeline is split into entity linking, motif
// search, query build and retrieval, with the retrieval evaluator's
// candidate/postings/heap counters attached.
type StageProfileResult struct {
	Dataset string
	Stats   *core.PipelineStats
}

// StageProfile runs the SQE_C workload of inst with the stats layer
// threaded through every stage.
func StageProfile(s *Suite, inst *dataset.Instance) *StageProfileResult {
	r := s.NewRunner(inst)
	ps := &core.PipelineStats{}
	for qi := range inst.Queries {
		q := &inst.Queries[qi]
		start := time.Now()
		nodes := r.Entities(q, true)
		ps.Stages.EntityLink += time.Since(start)
		for _, set := range []motif.Set{motif.SetT, motif.SetTS, motif.SetS} {
			qg := r.Expander.BuildQueryGraphStats(nodes, set, ps)
			node := r.Expander.BuildQueryStats(q.Text, qg, ps)
			start = time.Now()
			_, st := r.Searcher.SearchWithStats(node, RunDepth)
			ps.Stages.Retrieval += time.Since(start)
			ps.Search.Add(st)
			ps.Retrievals++
		}
		ps.Queries++
	}
	return &StageProfileResult{Dataset: inst.Name, Stats: ps}
}

// String renders the profile the way sqe-bench prints it.
func (r *StageProfileResult) String() string {
	return fmt.Sprintf("stage profile — %s\n%s", r.Dataset, r.Stats.String())
}

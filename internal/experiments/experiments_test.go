package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/motif"
)

var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func smallSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() { suite, suiteErr = NewSuite(dataset.ScaleSmall) })
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestSuiteConstruction(t *testing.T) {
	s := smallSuite(t)
	if len(s.Instances()) != 3 {
		t.Fatal("want 3 instances")
	}
	for _, in := range s.Instances() {
		if in.Index == nil || len(in.Queries) == 0 {
			t.Fatalf("instance %s incomplete", in.Name)
		}
	}
	if s.Linker == nil {
		t.Fatal("no linker")
	}
}

func TestRunnerProducesFullRuns(t *testing.T) {
	s := smallSuite(t)
	r := s.NewRunner(s.ImageCLEF)
	run := r.QLQ()
	if len(run) != len(s.ImageCLEF.Queries) {
		t.Fatalf("run has %d entries, want %d", len(run), len(s.ImageCLEF.Queries))
	}
	for id, docs := range run {
		if len(docs) > RunDepth {
			t.Fatalf("%s: run deeper than %d", id, RunDepth)
		}
		seen := map[string]bool{}
		for _, d := range docs {
			if seen[d] {
				t.Fatalf("%s: duplicate doc %s in run", id, d)
			}
			seen[d] = true
		}
	}
}

func TestEntitiesManualVsAutomatic(t *testing.T) {
	s := smallSuite(t)
	r := s.NewRunner(s.ImageCLEF)
	q := &s.ImageCLEF.Queries[0]
	manual := r.Entities(q, true)
	if len(manual) == 0 {
		t.Fatal("no manual entities")
	}
	// Cached: same slice on second call.
	again := r.Entities(q, true)
	if &manual[0] != &again[0] {
		t.Error("entity cache not effective")
	}
	auto := r.Entities(q, false)
	_ = auto // may be empty for hard queries; just must not panic
}

// TestPaperShapeTable1 asserts the reproduction's core claims on the
// small environment: expansion beats all baselines, and the ground-truth
// upper bound beats or matches the blind motif expansion on shallow tops.
func TestPaperShapeTable1(t *testing.T) {
	s := smallSuite(t)
	t1 := Table1(s)
	meanOver := func(name string, tops ...int) float64 {
		var sum float64
		for _, k := range tops {
			sum += t1.Reports[name].Mean[k]
		}
		return sum / float64(len(tops))
	}
	shallow := []int{5, 10, 15, 20, 30}
	bestBaseline := 0.0
	for _, b := range []string{"QL_Q", "QL_E", "QL_Q&E"} {
		if v := meanOver(b, shallow...); v > bestBaseline {
			bestBaseline = v
		}
	}
	for _, sqe := range []string{"SQE_T", "SQE_T&S", "SQE_S"} {
		if got := meanOver(sqe, shallow...); got <= bestBaseline {
			t.Errorf("%s shallow precision %.3f not above best baseline %.3f", sqe, got, bestBaseline)
		}
	}
	if t1.UBRatioAvg <= 0.5 || t1.UBRatioAvg > 1.15 {
		t.Errorf("UB ratio average %.2f out of plausible band", t1.UBRatioAvg)
	}
	if t1.UBRatioWorst > t1.UBRatioAvg {
		t.Error("worst UB ratio above average")
	}
	if !strings.Contains(t1.Table.String(), "SQE_UB") {
		t.Error("table rendering incomplete")
	}
}

func TestPaperShapeTable2(t *testing.T) {
	s := smallSuite(t)
	for _, inst := range s.Instances() {
		t2 := Table2(s, inst)
		meanOver := func(name string, tops ...int) float64 {
			var sum float64
			for _, k := range tops {
				sum += t2.Reports[name].Mean[k]
			}
			return sum / float64(len(tops))
		}
		shallow := []int{5, 10, 15, 20, 30}
		best := 0.0
		for _, b := range []string{"QL_Q", "QL_E (M)", "QL_E (A)", "QL_Q&E (M)", "QL_Q&E (A)"} {
			if v := meanOver(b, shallow...); v > best {
				best = v
			}
		}
		sqeM := meanOver("SQE_C (M)", shallow...)
		sqeA := meanOver("SQE_C (A)", shallow...)
		if sqeM <= best {
			t.Errorf("%s: SQE_C (M) %.3f not above best baseline %.3f", inst.Name, sqeM, best)
		}
		if sqeA <= best*0.85 {
			t.Errorf("%s: SQE_C (A) %.3f collapsed vs baseline %.3f", inst.Name, sqeA, best)
		}
		// Manual entity selection is (approximately) an upper bound of
		// automatic selection.
		if sqeA > sqeM*1.15 {
			t.Errorf("%s: automatic (%.3f) should not beat manual (%.3f) by a wide margin", inst.Name, sqeA, sqeM)
		}
	}
}

func TestPaperShapePRFCollapse(t *testing.T) {
	s := smallSuite(t)
	inst := s.ImageCLEF
	t2 := Table2(s, inst)
	t3 := Table3(s, inst, t2)
	// PRF on the raw query must be far below the raw query itself
	// (the paper's central PRF observation).
	prfQ := t3.Reports["PRF_Q"].Mean[10]
	qlQ := t2.Reports["QL_Q"].Mean[10]
	if prfQ > qlQ*0.8 {
		t.Errorf("PRF_Q (%.3f) should collapse well below QL_Q (%.3f)", prfQ, qlQ)
	}
	// SQE∘PRF must stay in the same league as SQE_C (orthogonality):
	// no collapse.
	sqePRF := t3.Reports["SQE_C/PRF"].Mean[10]
	sqeC := t2.Reports["SQE_C (A)"].Mean[10]
	if sqePRF < sqeC*0.5 {
		t.Errorf("SQE∘PRF (%.3f) collapsed relative to SQE_C (%.3f)", sqePRF, sqeC)
	}
	if !strings.Contains(t3.Table.String(), "%G") {
		t.Error("Table 3 should render gain columns")
	}
}

func TestFigure2Shape(t *testing.T) {
	s := smallSuite(t)
	f2 := Figure2(s)
	if len(f2.Lengths) != 3 {
		t.Fatal("want lengths 3,4,5")
	}
	total := 0
	for _, l := range f2.Lengths {
		total += f2.CycleCount[l]
		if cr := f2.CategoryRatio[l]; f2.CycleCount[l] > 0 && (cr <= 0 || cr >= 1) {
			t.Errorf("category ratio at length %d = %.3f out of (0,1)", l, cr)
		}
		if d := f2.ExtraEdgeDensity[l]; d < 0 {
			t.Errorf("negative extra-edge density at length %d", l)
		}
	}
	if total == 0 {
		t.Fatal("no cycles found in ground-truth query graphs")
	}
	// The paper's headline observation: roughly a third of cycle nodes
	// are categories. Allow a generous band.
	if cr := f2.CategoryRatio[3]; cr < 0.15 || cr > 0.6 {
		t.Errorf("length-3 category ratio %.3f outside [0.15,0.6]", cr)
	}
	// Ground-truth precision must decay with the top size.
	if f2.GroundTruthP[1] < f2.GroundTruthP[15] {
		t.Errorf("ground-truth precision should decay: P@1=%.3f P@15=%.3f", f2.GroundTruthP[1], f2.GroundTruthP[15])
	}
	if f2.String() == "" {
		t.Error("Figure2 rendering empty")
	}
}

func TestFigure5And6(t *testing.T) {
	s := smallSuite(t)
	t1 := Table1(s)
	f5 := Figure5(t1)
	if len(f5.Series) != 3 {
		t.Fatal("Figure 5 wants 3 series")
	}
	for _, series := range f5.Series {
		if len(series.Values) != len(eval.Tops) {
			t.Fatalf("series %s incomplete", series.Name)
		}
	}
	t2 := Table2(s, s.ImageCLEF)
	f6 := Figure6(t2)
	if len(f6.Series) != 3 {
		t.Fatal("Figure 6 wants 3 series")
	}
	// SQE_C (M) improvement at P@5 must be positive.
	for _, series := range f6.Series {
		if series.Name == "SQE_C (M)" && series.Values[5] <= 0 {
			t.Errorf("SQE_C (M) improvement at P@5 = %.2f, want positive", series.Values[5])
		}
	}
	if !strings.Contains(f5.String(), "SQE_T") || !strings.Contains(f6.String(), "Q_X") {
		t.Error("figure rendering incomplete")
	}
}

func TestTable4Timing(t *testing.T) {
	s := smallSuite(t)
	t4 := Table4(s)
	if len(t4.Datasets) != 3 {
		t.Fatal("want 3 datasets")
	}
	for _, set := range []motif.Set{motif.SetT, motif.SetTS, motif.SetS} {
		for _, d := range t4.Datasets {
			dur, ok := t4.Expansion[set][d]
			if !ok {
				t.Fatalf("missing timing for %v/%s", set, d)
			}
			if dur <= 0 {
				t.Fatalf("non-positive expansion time for %v/%s", set, d)
			}
			// The paper's claim: expansion is sub-second (in their case
			// sub-400ms for 50 queries); our graphs are smaller, so a
			// whole query set must expand well within a second.
			if dur.Seconds() > 1 {
				t.Errorf("expansion time %v too slow for %s", dur, d)
			}
		}
	}
	for _, d := range t4.Datasets {
		if t4.Total[d] < t4.Expansion[motif.SetTS][d] {
			t.Errorf("%s: total time below expansion time", d)
		}
	}
	if !strings.Contains(t4.String(), "Total Time") {
		t.Error("Table 4 rendering incomplete")
	}
}

func TestPrecisionTableRendering(t *testing.T) {
	tab := PrecisionTable{
		Title: "test",
		Tops:  []int{5, 10},
		Rows: []Row{{
			Name: "row",
			Mean: map[int]float64{5: 0.5, 10: 0.25},
			Sig:  map[int]bool{5: true},
			Gain: map[int]float64{5: 10, 10: -5},
		}},
		ShowGain: true,
	}
	out := tab.String()
	for _, want := range []string{"P@5", "P@10", "0.500†", "0.250", "+10.00", "-5.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering %q missing %q", out, want)
		}
	}
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/motif"
	"repro/internal/search"
)

// HotpathBenchRow is one retrieval model's hot-path measurement: the
// streaming per-block cursor against the eager whole-term materialiser
// on a cold mapping, steady-state latency percentiles, and the
// allocation count of the pooled evaluator scratch against the same
// evaluator allocating per query.
type HotpathBenchRow struct {
	Model string `json:"model"`
	// NsColdEagerPerQry / NsColdStreamPerQry measure time-to-first-
	// result on a cold mapping: each term-projected expanded query
	// runs against its OWN freshly opened index (Open excluded —
	// identical for both legs), so nothing it needs is decoded yet and
	// nothing amortises across queries. The eager leg is the PR 8
	// block-max hot path as it shipped — whole-term materialisation
	// (docs, freqs and positions) with per-query scratch allocation;
	// the streaming leg is the current hot path — block cursors
	// decoding only what the evaluator visits, pooled scratch.
	// Per-query minimum across rounds, legs interleaved.
	NsColdEagerPerQry  float64 `json:"ns_per_query_cold_eager"`
	NsColdStreamPerQry float64 `json:"ns_per_query_cold_stream"`
	SpeedupCold        float64 `json:"speedup_cold_vs_eager"`
	// WarmP50Ns / WarmP99Ns are steady-state per-query latencies of the
	// streaming pruned evaluator on the full expanded workload, sampled
	// per query across all rounds after a warm-up pass.
	WarmP50Ns int64 `json:"warm_p50_ns"`
	WarmP99Ns int64 `json:"warm_p99_ns"`
	// AllocsUnpooled / AllocsPooled count heap allocations per query
	// (runtime Mallocs delta) on the warm term-only workload with the
	// evaluation-scratch pool off and on; min over rounds repetitions.
	AllocsUnpooled float64 `json:"allocs_per_query_unpooled"`
	AllocsPooled   float64 `json:"allocs_per_query_pooled"`
	AllocReduction float64 `json:"alloc_reduction"`
	// BlocksDecoded / BlocksTotal come from the streaming pruned pass
	// over the full expanded workload: blocks actually decoded versus
	// the blocks held by every term leaf touched. The fraction is the
	// tentpole claim — pruning plus parked cursors means most blocks of
	// an expanded query's long tail are never decoded at all.
	BlocksDecoded   int64   `json:"blocks_decoded"`
	BlocksTotal     int64   `json:"blocks_total"`
	DecodedFraction float64 `json:"decoded_block_fraction"`
	// Identical asserts bit-identity of the streaming pruned evaluator
	// against exhaustive DAAT over the same v2 file AND against
	// exhaustive DAAT over the in-memory index, on the full workload.
	Identical bool `json:"identical_to_full"`
}

// HotpathBenchResult is the BENCH_hotpath.json artifact: streaming
// block cursors + pooled scratch versus the eager whole-term hot path
// on one dataset instance's expanded SQE_T&S workload, served from an
// mmap'd FormatV2 file.
type HotpathBenchResult struct {
	Dataset    string `json:"dataset"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	K          int    `json:"k"`
	Rounds     int    `json:"rounds"`
	Queries    int    `json:"queries"`
	// TermQueries counts the term-only projections of the expanded
	// trees (phrase/window leaves stripped) used by the cold and the
	// allocation legs; zero-leaf projections are dropped.
	TermQueries int `json:"term_queries"`
	// BlockSize is the postings block size the bench file is encoded
	// with (see hotpathBlockSize).
	BlockSize int               `json:"block_size"`
	FileBytes int64             `json:"file_bytes"`
	OpenNs    int64             `json:"open_ns"`
	Rows      []HotpathBenchRow `json:"rows"`
}

// hotpathBlockSize is the postings block size of the bench's private
// index file. The production DefaultBlockSize (128) targets real-corpus
// postings lists with tens of thousands of entries; on the synthetic
// suite's ~84k-document corpora the average term spans only one or two
// 128-document blocks, leaving a block-granular decoder nothing to
// skip. Re-encoding the bench file at a few documents per block (hotpathBlockSize) recreates
// the many-blocks-per-term regime the streaming cursor is for (~12
// blocks for an average term — the shape an average term has at
// production block size on a corpus two orders of magnitude larger)
// while keeping every counter deterministic.
const hotpathBlockSize = 4

// hotpathColdQueries caps how many queries the cold (time-to-first-
// result) legs run: each cold sample needs its own index.Open, whose
// full-file CRC scan costs tens of milliseconds — real but untimed —
// so the cap keeps the bench's wall clock proportionate.
const hotpathColdQueries = 16

// termProject relaxes an expanded query tree to an all-term form:
// Term leaves survive as-is, phrase and unordered-window leaves become
// equal-weight bags of their component terms. Proximity leaves force
// positional materialisation on BOTH evaluator legs (positions are
// never streamed), so leaving them in the cold and allocation
// measurements would dilute the very effect under test — while
// DROPPING them would gut the queries to a handful of leaves and push
// them under the evaluator's MaxScore cost-model floor. The projection
// keeps the expanded query's full leaf set and postings mass and
// removes only the positional work.
func termProject(n search.Node) (search.Node, bool) {
	switch x := n.(type) {
	case search.Term:
		return x, true
	case search.Phrase:
		return termBag(x.Terms)
	case search.Unordered:
		return termBag(x.Terms)
	case search.Weighted:
		var ch []search.Child
		for _, c := range x.Children {
			if sub, ok := termProject(c.Node); ok {
				ch = append(ch, search.Child{Weight: c.Weight, Node: sub})
			}
		}
		if len(ch) == 0 {
			return nil, false
		}
		return search.Weighted{Children: ch}, true
	default:
		return nil, false
	}
}

func termBag(terms []string) (search.Node, bool) {
	switch len(terms) {
	case 0:
		return nil, false
	case 1:
		return search.Term{Text: terms[0]}, true
	}
	nodes := make([]search.Node, len(terms))
	for i, t := range terms {
		nodes[i] = search.Term{Text: t}
	}
	return search.Combine(nodes...), true
}

// HotpathBench rounds the instance's index through a FormatV2 file and
// measures the streaming query hot path per retrieval model:
//
//   - cold decode granularity: term-only expanded queries over a fresh
//     mapping per round, eager materialisation vs streaming cursors
//     (both pruned), interleaved min-of-rounds;
//   - steady-state latency: warm p50/p99 of the streaming pruned
//     evaluator on the full expanded workload;
//   - allocations: Mallocs per query with the scratch pool off vs on;
//   - decoded-block fraction and three-way bit-identity (streaming
//     pruned vs exhaustive DAAT over v2 vs exhaustive over memory).
func HotpathBench(s *Suite, inst *dataset.Instance, k, rounds int) (*HotpathBenchResult, error) {
	if k <= 0 {
		k = 10
	}
	if rounds <= 0 {
		rounds = 5
	}
	r := s.NewRunner(inst)
	queries := inst.Queries
	nodes := make([]search.Node, len(queries))
	var termNodes []search.Node
	for qi := range queries {
		q := &queries[qi]
		qg := r.Expander.BuildQueryGraph(r.Entities(q, true), motif.SetTS)
		nodes[qi] = r.Expander.BuildQuery(q.Text, qg)
		if tn, ok := termProject(nodes[qi]); ok {
			termNodes = append(termNodes, tn)
		}
	}
	if len(termNodes) == 0 {
		return nil, fmt.Errorf("hotpath bench: no term-only queries on %s", inst.Name)
	}

	dir, err := os.MkdirTemp("", "hotpath")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	// Private copy of the instance's index via a v1 round-trip (fully
	// decoded on open, block bounds not yet derived) so the bench can
	// re-encode at hotpathBlockSize without mutating the shared suite
	// index, whose block geometry other experiments depend on.
	v1path := filepath.Join(dir, "index.v1")
	if err := index.WriteFile(v1path, inst.Index, index.FormatV1); err != nil {
		return nil, err
	}
	priv, err := index.Open(v1path)
	if err != nil {
		return nil, err
	}
	defer priv.Close()
	if err := priv.SetBlockSize(hotpathBlockSize); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "index.v2")
	if err := index.WriteFile(path, priv, index.FormatV2); err != nil {
		return nil, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	openStart := time.Now()
	disk, err := index.Open(path)
	if err != nil {
		return nil, err
	}
	openNs := time.Since(openStart).Nanoseconds()
	defer disk.Close()

	out := &HotpathBenchResult{
		Dataset:     inst.Name,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		K:           k,
		Rounds:      rounds,
		Queries:     len(queries),
		TermQueries: len(termNodes),
		BlockSize:   hotpathBlockSize,
		FileBytes:   fi.Size(),
		OpenNs:      openNs,
	}
	models := []struct {
		name  string
		model search.Model
	}{
		{"dirichlet", search.ModelDirichlet},
		{"jelinek-mercer", search.ModelJelinekMercer},
		{"bm25", search.ModelBM25},
	}
	for _, m := range models {
		stream := search.NewSearcher(disk)
		stream.Model = m.model
		exhaust := search.NewSearcher(disk)
		exhaust.Model = m.model
		exhaust.DisablePruning = true
		mem := search.NewSearcher(priv)
		mem.Model = m.model
		mem.DisablePruning = true

		// Counting pass: decoded-block fraction plus the three-way
		// identity check on the full expanded workload.
		row := HotpathBenchRow{Model: m.name, Identical: true}
		for _, n := range nodes {
			sres, sst := stream.SearchWithStats(n, k)
			eres := exhaust.Search(n, k)
			mres := mem.Search(n, k)
			row.BlocksDecoded += sst.BlocksDecoded
			row.BlocksTotal += sst.BlocksTotal
			if !sameResults(sres, eres) || !sameResults(eres, mres) {
				row.Identical = false
			}
		}
		if row.BlocksTotal > 0 {
			row.DecodedFraction = float64(row.BlocksDecoded) / float64(row.BlocksTotal)
		}

		// Cold legs: one fresh Open per query per leg, timing only the
		// query itself. A fresh mapping per query is what makes this a
		// first-result measurement — a shared mapping would let the
		// eager leg amortise its whole-term materialisation across
		// every query that reuses an expansion term, which is the
		// steady state the warm percentiles already cover, not the
		// cold start. Capped at hotpathColdQueries queries to bound
		// the (untimed) Open cost; per-query minimum across rounds.
		coldQ := termNodes
		if len(coldQ) > hotpathColdQueries {
			coldQ = coldQ[:hotpathColdQueries]
		}
		coldOne := func(n search.Node, pr8 bool) (time.Duration, error) {
			cold, err := index.Open(path)
			if err != nil {
				return 0, err
			}
			defer cold.Close()
			sr := search.NewSearcher(cold)
			sr.Model = m.model
			if pr8 {
				// The baseline is the PR 8 configuration in full:
				// eager materialisation AND per-query allocation.
				sr.DisableStreaming = true
				search.SetScratchPooling(false)
				defer search.SetScratchPooling(true)
			}
			start := time.Now()
			_ = sr.Search(n, k)
			return time.Since(start), cold.Err()
		}
		minEager := make([]int64, len(coldQ))
		minStream := make([]int64, len(coldQ))
		for qi := range coldQ {
			minEager[qi], minStream[qi] = 1<<62, 1<<62
		}
		for round := 0; round < rounds; round++ {
			for qi, n := range coldQ {
				d, err := coldOne(n, true)
				if err != nil {
					return nil, err
				}
				if ns := d.Nanoseconds(); ns < minEager[qi] {
					minEager[qi] = ns
				}
				if d, err = coldOne(n, false); err != nil {
					return nil, err
				}
				if ns := d.Nanoseconds(); ns < minStream[qi] {
					minStream[qi] = ns
				}
			}
		}
		var sumEager, sumStream int64
		for qi := range coldQ {
			sumEager += minEager[qi]
			sumStream += minStream[qi]
		}
		row.NsColdEagerPerQry = float64(sumEager) / float64(len(coldQ))
		row.NsColdStreamPerQry = float64(sumStream) / float64(len(coldQ))
		if row.NsColdStreamPerQry > 0 {
			row.SpeedupCold = row.NsColdEagerPerQry / row.NsColdStreamPerQry
		}

		// Warm latency percentiles: streaming pruned over the long-lived
		// mapping, full expanded workload, one sample per query per
		// round (the counting pass above was the warm-up).
		samples := make([]int64, 0, rounds*len(nodes))
		for round := 0; round < rounds; round++ {
			for _, n := range nodes {
				start := time.Now()
				_ = stream.Search(n, k)
				samples = append(samples, time.Since(start).Nanoseconds())
			}
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		pct := func(q float64) int64 {
			i := int(q*float64(len(samples))+0.5) - 1
			if i < 0 {
				i = 0
			}
			if i >= len(samples) {
				i = len(samples) - 1
			}
			return samples[i]
		}
		row.WarmP50Ns = pct(0.50)
		row.WarmP99Ns = pct(0.99)

		// Allocation legs: Mallocs delta per query on the warm
		// term-only workload, scratch pool off then on; min over rounds
		// repetitions strips background-GC noise.
		allocs := func(pooled bool) float64 {
			search.SetScratchPooling(pooled)
			defer search.SetScratchPooling(true)
			// Warm-up: populate (or bypass) the pool outside the window.
			for _, n := range termNodes {
				_ = stream.Search(n, k)
			}
			best := float64(1 << 62)
			var ms runtime.MemStats
			for round := 0; round < rounds; round++ {
				runtime.ReadMemStats(&ms)
				before := ms.Mallocs
				for _, n := range termNodes {
					_ = stream.Search(n, k)
				}
				runtime.ReadMemStats(&ms)
				per := float64(ms.Mallocs-before) / float64(len(termNodes))
				if per < best {
					best = per
				}
			}
			return best
		}
		row.AllocsUnpooled = allocs(false)
		row.AllocsPooled = allocs(true)
		if row.AllocsPooled > 0 {
			row.AllocReduction = row.AllocsUnpooled / row.AllocsPooled
		}
		out.Rows = append(out.Rows, row)
	}
	if err := disk.Err(); err != nil {
		return nil, fmt.Errorf("hotpath bench: v2 lazy decode recorded an error: %w", err)
	}
	return out, nil
}

// DefaultHotpathInstance picks CHiC 2012: the instance the hot-path
// numbers are quoted on (large enough for multi-block postings, small
// enough that cold rounds with a fresh mapping stay cheap).
func DefaultHotpathInstance(s *Suite) *dataset.Instance { return s.CHiC2012 }

// JSON renders the result as indented JSON (the BENCH_hotpath.json
// artifact written by `make bench-hotpath`).
func (r *HotpathBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func (r *HotpathBenchResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "streaming hot path over mmap'd v2, %s (%d queries, %d term-only, k=%d, %d rounds, block size %d, %d file bytes, open %v, GOMAXPROCS=%d):\n",
		r.Dataset, r.Queries, r.TermQueries, r.K, r.Rounds, r.BlockSize, r.FileBytes,
		time.Duration(r.OpenNs).Round(time.Microsecond), r.GOMAXPROCS)
	for _, row := range r.Rows {
		mark := "bit-identical"
		if !row.Identical {
			mark = "RESULTS DIVERGED"
		}
		fmt.Fprintf(&sb, "  %-15s cold %8.0f -> %8.0f ns/query (%.2fx)  warm p50 %s p99 %s  allocs/query %6.1f -> %5.1f (%.1fx)  blocks %d/%d (%.1f%% decoded)  %s\n",
			row.Model, row.NsColdEagerPerQry, row.NsColdStreamPerQry, row.SpeedupCold,
			time.Duration(row.WarmP50Ns).Round(time.Microsecond),
			time.Duration(row.WarmP99Ns).Round(time.Microsecond),
			row.AllocsUnpooled, row.AllocsPooled, row.AllocReduction,
			row.BlocksDecoded, row.BlocksTotal, 100*row.DecodedFraction, mark)
	}
	return sb.String()
}

package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/motif"
	"repro/internal/search"
)

// PruningBenchRow is one retrieval model's pruned-vs-exhaustive
// measurement on the expanded-query workload.
type PruningBenchRow struct {
	Model string `json:"model"`
	// DocsScoredFull / DocsScoredPruned are documents FULLY scored
	// across the workload (CandidatesExamined — candidates rejected by
	// the bound filter don't count), deterministic for a fixed dataset
	// seed — the honest "work saved" metric.
	DocsScoredFull   int64 `json:"docs_scored_full"`
	DocsScoredPruned int64 `json:"docs_scored_pruned"`
	// Reduction = full/pruned documents scored (≥ 1 when pruning helps).
	Reduction float64 `json:"docs_scored_reduction"`
	// DocsSkipped is the postings entries galloped over without scoring.
	DocsSkipped int64 `json:"docs_skipped"`
	// NsFullPerQry / NsPrunedPerQry are single-threaded wall-clock per
	// query; Speedup = full/pruned. Wall-clock varies with hardware —
	// the regression gate treats it with a wide tolerance, unlike the
	// deterministic counters above.
	NsFullPerQry   float64 `json:"ns_per_query_full"`
	NsPrunedPerQry float64 `json:"ns_per_query_pruned"`
	Speedup        float64 `json:"speedup_vs_full"`
	// Identical asserts the pruned rankings and scores matched the
	// exhaustive evaluator's exactly (==, no tolerance) on every query.
	Identical bool `json:"identical_to_full"`
}

// PruningBenchResult reports MaxScore pruning effectiveness on the
// fully expanded SQE_T&S query workload of one dataset instance, per
// retrieval model. Numbers are single-core honest: the evaluation is
// one goroutine end to end, and GOMAXPROCS is recorded for context.
type PruningBenchResult struct {
	Dataset    string            `json:"dataset"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	K          int               `json:"k"`
	Reps       int               `json:"reps"`
	Queries    int               `json:"queries"`
	Rows       []PruningBenchRow `json:"rows"`
}

// PruningBench times top-k retrieval of every query's expanded SQE_T&S
// form with the exhaustive DAAT evaluator and the MaxScore-pruned one,
// for all three retrieval models. One counting pass per configuration
// collects the deterministic work counters and the rankings for the
// identity check; reps timed passes follow.
func PruningBench(s *Suite, inst *dataset.Instance, k, reps int) *PruningBenchResult {
	if k <= 0 {
		k = 10
	}
	if reps <= 0 {
		reps = 3
	}
	r := s.NewRunner(inst)
	queries := inst.Queries
	nodes := make([]search.Node, len(queries))
	for qi := range queries {
		q := &queries[qi]
		qg := r.Expander.BuildQueryGraph(r.Entities(q, true), motif.SetTS)
		nodes[qi] = r.Expander.BuildQuery(q.Text, qg)
	}

	out := &PruningBenchResult{
		Dataset:    inst.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		K:          k,
		Reps:       reps,
		Queries:    len(queries),
	}
	models := []struct {
		name  string
		model search.Model
	}{
		{"dirichlet", search.ModelDirichlet},
		{"jelinek-mercer", search.ModelJelinekMercer},
		{"bm25", search.ModelBM25},
	}
	for _, m := range models {
		full := search.NewSearcher(inst.Index)
		full.Model = m.model
		full.DisablePruning = true
		pruned := search.NewSearcher(inst.Index)
		pruned.Model = m.model

		row := PruningBenchRow{Model: m.name, Identical: true}
		prunedRes := make([][]search.Result, len(nodes))
		for i, n := range nodes {
			fres, fst := full.SearchWithStats(n, k)
			pres, pst := pruned.SearchWithStats(n, k)
			row.DocsScoredFull += fst.CandidatesExamined
			row.DocsScoredPruned += pst.CandidatesExamined
			row.DocsSkipped += pst.DocsSkipped
			prunedRes[i] = pres
			if len(pres) != len(fres) {
				row.Identical = false
				continue
			}
			for j := range fres {
				if pres[j] != fres[j] {
					row.Identical = false
					break
				}
			}
		}
		timeAll := func(sr *search.Searcher) float64 {
			start := time.Now()
			for rep := 0; rep < reps; rep++ {
				for _, n := range nodes {
					_ = sr.Search(n, k)
				}
			}
			return float64(time.Since(start)) / float64(reps*len(nodes))
		}
		row.NsFullPerQry = timeAll(full)
		row.NsPrunedPerQry = timeAll(pruned)
		if row.DocsScoredPruned > 0 {
			row.Reduction = float64(row.DocsScoredFull) / float64(row.DocsScoredPruned)
		}
		if row.NsPrunedPerQry > 0 {
			row.Speedup = row.NsFullPerQry / row.NsPrunedPerQry
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// JSON renders the result as indented JSON (the BENCH_pruning.json
// artifact written by `make bench-pruning`).
func (r *PruningBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func (r *PruningBenchResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "maxscore pruning, %s (%d queries, k=%d, %d reps, GOMAXPROCS=%d):\n",
		r.Dataset, r.Queries, r.K, r.Reps, r.GOMAXPROCS)
	for _, row := range r.Rows {
		mark := "bit-identical"
		if !row.Identical {
			mark = "RANKINGS DIVERGED"
		}
		fmt.Fprintf(&sb, "  %-15s docs scored %8d -> %8d (%.2fx fewer, %d skipped)  %8.0f -> %8.0f ns/query (%.2fx)  %s\n",
			row.Model, row.DocsScoredFull, row.DocsScoredPruned, row.Reduction,
			row.DocsSkipped, row.NsFullPerQry, row.NsPrunedPerQry, row.Speedup, mark)
	}
	return sb.String()
}

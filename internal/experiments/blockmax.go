package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/motif"
	"repro/internal/search"
)

// BlockMaxBenchRow is one retrieval model's Block-Max measurement: the
// exhaustive and the pruned evaluator running over the SAME mmap'd
// FormatV2 index, so the ratio isolates the evaluator rather than the
// storage format.
type BlockMaxBenchRow struct {
	Model string `json:"model"`
	// DocsScoredFull / DocsScoredPruned count documents fully scored
	// across the workload; deterministic for a fixed dataset seed.
	DocsScoredFull   int64   `json:"docs_scored_full"`
	DocsScoredPruned int64   `json:"docs_scored_pruned"`
	Reduction        float64 `json:"docs_scored_reduction"`
	DocsSkipped      int64   `json:"docs_skipped"`
	// BlockBoundEvals counts consultations of per-block maxima — the
	// v2 block directory actually steering the evaluator. Zero would
	// mean the Block-Max tier never engaged on this workload.
	BlockBoundEvals int64 `json:"block_bound_evals"`
	// NsFullPerQry / NsPrunedPerQry are min-of-rounds wall clocks (see
	// BlockMaxBench): interleaved rounds, best round kept, which is the
	// standard way to strip scheduler noise from a ratio of two
	// same-machine measurements.
	NsFullPerQry   float64 `json:"ns_per_query_full"`
	NsPrunedPerQry float64 `json:"ns_per_query_pruned"`
	Speedup        float64 `json:"speedup_vs_full"`
	// Identical asserts both that the pruned evaluator matched the
	// exhaustive one and that the v2 file served the same scores as the
	// in-memory index — bit-exact, no tolerance.
	Identical bool `json:"identical_to_full"`
}

// BlockMaxBenchResult is the BENCH_blockmax.json artifact: Block-Max
// MaxScore versus exhaustive DAAT on the expanded SQE_T&S workload of
// one dataset instance, served from an mmap'd FormatV2 file.
type BlockMaxBenchResult struct {
	Dataset    string `json:"dataset"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	K          int    `json:"k"`
	Rounds     int    `json:"rounds"`
	Queries    int    `json:"queries"`
	// FileBytes and OpenNs describe the v2 artifact itself: the size of
	// the written index image and the time index.Open took to validate
	// headers + CRCs and map it (postings stay lazy).
	FileBytes int64              `json:"file_bytes"`
	OpenNs    int64              `json:"open_ns"`
	Rows      []BlockMaxBenchRow `json:"rows"`
}

// BlockMaxBench rounds the instance's index through a FormatV2 file,
// opens it (mmap, lazy per-block decode) and times top-k retrieval of
// every query's expanded SQE_T&S form with the exhaustive and the
// Block-Max-pruned evaluator, per retrieval model.
//
// Timing discipline: one warm-up pass per evaluator (materialises the
// lazy postings and the phrase positions once — both evaluators share
// that cost), then `rounds` interleaved full/pruned rounds, keeping the
// MINIMUM total per evaluator. Interleaving makes the two measurements
// see the same machine state; min-of-rounds is the lowest-noise robust
// statistic for a ratio (the minimum is the run least disturbed by the
// scheduler, and both sides get the same treatment).
func BlockMaxBench(s *Suite, inst *dataset.Instance, k, rounds int) (*BlockMaxBenchResult, error) {
	if k <= 0 {
		k = 10
	}
	if rounds <= 0 {
		rounds = 5
	}
	r := s.NewRunner(inst)
	queries := inst.Queries
	nodes := make([]search.Node, len(queries))
	for qi := range queries {
		q := &queries[qi]
		qg := r.Expander.BuildQueryGraph(r.Entities(q, true), motif.SetTS)
		nodes[qi] = r.Expander.BuildQuery(q.Text, qg)
	}

	dir, err := os.MkdirTemp("", "blockmax")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "index.v2")
	if err := index.WriteFile(path, inst.Index, index.FormatV2); err != nil {
		return nil, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	openStart := time.Now()
	disk, err := index.Open(path)
	if err != nil {
		return nil, err
	}
	openNs := time.Since(openStart).Nanoseconds()
	defer disk.Close()

	out := &BlockMaxBenchResult{
		Dataset:    inst.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		K:          k,
		Rounds:     rounds,
		Queries:    len(queries),
		FileBytes:  fi.Size(),
		OpenNs:     openNs,
	}
	models := []struct {
		name  string
		model search.Model
	}{
		{"dirichlet", search.ModelDirichlet},
		{"jelinek-mercer", search.ModelJelinekMercer},
		{"bm25", search.ModelBM25},
	}
	for _, m := range models {
		full := search.NewSearcher(disk)
		full.Model = m.model
		full.DisablePruning = true
		pruned := search.NewSearcher(disk)
		pruned.Model = m.model
		mem := search.NewSearcher(inst.Index)
		mem.Model = m.model
		mem.DisablePruning = true

		// Counting pass: deterministic work counters plus the two-way
		// identity check (pruned-over-v2 vs exhaustive-over-v2 vs
		// exhaustive-over-memory).
		row := BlockMaxBenchRow{Model: m.name, Identical: true}
		for _, n := range nodes {
			fres, fst := full.SearchWithStats(n, k)
			pres, pst := pruned.SearchWithStats(n, k)
			mres := mem.Search(n, k)
			row.DocsScoredFull += fst.CandidatesExamined
			row.DocsScoredPruned += pst.CandidatesExamined
			row.DocsSkipped += pst.DocsSkipped
			row.BlockBoundEvals += pst.BlockBoundEvaluations
			if !sameResults(pres, fres) || !sameResults(fres, mres) {
				row.Identical = false
			}
		}

		pass := func(sr *search.Searcher) time.Duration {
			start := time.Now()
			for _, n := range nodes {
				_ = sr.Search(n, k)
			}
			return time.Since(start)
		}
		bestFull, bestPruned := time.Duration(1<<62), time.Duration(1<<62)
		for round := 0; round < rounds; round++ {
			if d := pass(full); d < bestFull {
				bestFull = d
			}
			if d := pass(pruned); d < bestPruned {
				bestPruned = d
			}
		}
		row.NsFullPerQry = float64(bestFull.Nanoseconds()) / float64(len(nodes))
		row.NsPrunedPerQry = float64(bestPruned.Nanoseconds()) / float64(len(nodes))
		if row.DocsScoredPruned > 0 {
			row.Reduction = float64(row.DocsScoredFull) / float64(row.DocsScoredPruned)
		}
		if row.NsPrunedPerQry > 0 {
			row.Speedup = row.NsFullPerQry / row.NsPrunedPerQry
		}
		out.Rows = append(out.Rows, row)
	}
	if err := disk.Err(); err != nil {
		return nil, fmt.Errorf("blockmax bench: v2 lazy decode recorded an error: %w", err)
	}
	return out, nil
}

func sameResults(a, b []search.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DefaultBlockMaxInstance picks the bench instance: the largest corpus
// in the suite, because block skipping is a long-postings-list
// mechanism — on a few thousand documents most lists fit in one or two
// 128-document blocks and there is nothing to skip over.
func DefaultBlockMaxInstance(s *Suite) *dataset.Instance {
	best := s.ImageCLEF
	for _, inst := range s.Instances() {
		if inst.Index.NumDocs() > best.Index.NumDocs() {
			best = inst
		}
	}
	return best
}

// JSON renders the result as indented JSON (the BENCH_blockmax.json
// artifact written by `make bench-blockmax`).
func (r *BlockMaxBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func (r *BlockMaxBenchResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "block-max maxscore over mmap'd v2, %s (%d queries, k=%d, %d rounds, %d file bytes, open %v, GOMAXPROCS=%d):\n",
		r.Dataset, r.Queries, r.K, r.Rounds, r.FileBytes, time.Duration(r.OpenNs).Round(time.Microsecond), r.GOMAXPROCS)
	for _, row := range r.Rows {
		mark := "bit-identical"
		if !row.Identical {
			mark = "RESULTS DIVERGED"
		}
		fmt.Fprintf(&sb, "  %-15s docs scored %8d -> %8d (%.2fx fewer, %d skipped, %d block bounds)  %8.0f -> %8.0f ns/query (%.2fx)  %s\n",
			row.Model, row.DocsScoredFull, row.DocsScoredPruned, row.Reduction,
			row.DocsSkipped, row.BlockBoundEvals, row.NsFullPerQry, row.NsPrunedPerQry, row.Speedup, mark)
	}
	return sb.String()
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/motif"
)

// MiningResult closes the loop on the paper's future work: the template
// miner (internal/motif) is trained on the ground-truth query graphs and
// should rediscover the two hand-crafted motifs — reciprocal links plus
// a category condition — as the top-scoring templates.
type MiningResult struct {
	Dataset string
	Scores  []motif.TemplateScore
}

// MineMotifs runs the template miner over inst's ground truth.
func MineMotifs(s *Suite, inst *dataset.Instance) *MiningResult {
	var truth []motif.GroundTruth
	for qi := range inst.Queries {
		q := &inst.Queries[qi]
		gt := inst.GroundTruth[q.ID]
		if len(gt) == 0 {
			continue
		}
		ex := motif.GroundTruth{QueryNode: q.Entities[0]}
		for _, f := range gt {
			ex.Good = append(ex.Good, f.Article)
		}
		truth = append(truth, ex)
	}
	m := motif.NewMiner(s.World.Graph)
	return &MiningResult{Dataset: inst.Name, Scores: m.Score(truth)}
}

// String renders the template ranking.
func (m *MiningResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Motif template mining (%s): templates by F1 against ground truth\n", m.Dataset)
	fmt.Fprintf(&sb, "%-36s %6s %6s %6s %8s\n", "template", "P", "R", "F1", "sel/qry")
	for _, sc := range m.Scores {
		fmt.Fprintf(&sb, "%-36s %6.3f %6.3f %6.3f %8.2f\n",
			sc.Template.String(), sc.Precision, sc.Recall, sc.F1, sc.AvgSelected)
	}
	return sb.String()
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/motif"
	"repro/internal/search"
)

// ModelComparisonResult compares retrieval substrates under the same SQE
// expansion — beyond the paper (which fixes Indri's query-likelihood
// model), this answers whether SQE's gains depend on the retrieval
// function.
type ModelComparisonResult struct {
	Dataset string
	// Rows are keyed "model/run": e.g. "bm25/QL_Q", "bm25/SQE_T&S".
	Table PrecisionTable
	// Gain[model] is the P@10 improvement of SQE_T&S over QL_Q under
	// that model.
	Gain map[string]float64
}

// ModelComparison runs QL_Q and SQE_T&S under all three retrieval
// models.
func ModelComparison(s *Suite, inst *dataset.Instance) *ModelComparisonResult {
	res := &ModelComparisonResult{
		Dataset: inst.Name,
		Table: PrecisionTable{
			Title: fmt.Sprintf("Retrieval-model comparison (%s)", inst.Name),
			Tops:  []int{5, 10, 30, 100},
		},
		Gain: map[string]float64{},
	}
	for _, model := range []search.Model{search.ModelDirichlet, search.ModelJelinekMercer, search.ModelBM25} {
		r := s.NewRunner(inst)
		r.Searcher.Model = model
		base := eval.Evaluate("QL_Q", inst.Qrels, r.QLQ())
		sqe := eval.Evaluate("SQE", inst.Qrels, r.SQE(motif.SetTS, true))
		res.Table.Rows = append(res.Table.Rows,
			rowFromReport(model.String()+"/QL_Q", base, nil, res.Table.Tops),
			rowFromReport(model.String()+"/SQE_T&S", sqe, nil, res.Table.Tops),
		)
		res.Gain[model.String()] = eval.PercentGain(sqe.Mean[10], base.Mean[10])
	}
	return res
}

// String renders the comparison with per-model gains.
func (m *ModelComparisonResult) String() string {
	var sb strings.Builder
	sb.WriteString(m.Table.String())
	sb.WriteString("SQE_T&S gain over QL_Q at P@10:")
	for _, model := range []string{"dirichlet", "jelinek-mercer", "bm25"} {
		fmt.Fprintf(&sb, " %s %+.1f%%", model, m.Gain[model])
	}
	sb.WriteByte('\n')
	return sb.String()
}

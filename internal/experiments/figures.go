package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/motif"
)

// Series is one line of a figure: a named sequence of (top → value)
// points.
type Series struct {
	Name   string
	Values map[int]float64
}

// Figure is a paper-style figure rendered as a value table (one row per
// series, one column per top).
type Figure struct {
	Title string
	Tops  []int
	// Unit annotates the values (e.g. "% improvement").
	Unit   string
	Series []Series
}

// String renders the figure as aligned text.
func (f *Figure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%s]\n", f.Title, f.Unit)
	fmt.Fprintf(&sb, "%-14s", "")
	for _, k := range f.Tops {
		fmt.Fprintf(&sb, "%10s", fmt.Sprintf("P@%d", k))
	}
	sb.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%-14s", s.Name)
		for _, k := range f.Tops {
			fmt.Fprintf(&sb, "%10.2f", s.Values[k])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure2Result reproduces paper Figure 2: the structural analysis of
// the ground-truth query graphs — per cycle length (3, 4, 5): (a) the
// precision contribution of that length's cycles, (b) the category
// ratio, (c) the extra-edge density. It also reports the ground truth's
// own precision at small tops, which the paper quotes as 0.833 / 0.624 /
// 0.588 / 0.547 for top-1/5/10/15.
type Figure2Result struct {
	// Lengths lists the analysed cycle lengths in order (3, 4, 5).
	Lengths []int
	// Contribution[L], CategoryRatio[L], ExtraEdgeDensity[L] are the
	// Figure 2a/2b/2c values.
	Contribution     map[int]float64
	CategoryRatio    map[int]float64
	ExtraEdgeDensity map[int]float64
	// CycleCount[L] is the total number of cycles of length L found.
	CycleCount map[int]int
	// GroundTruthP holds the ground-truth query graphs' precision at
	// tops 1, 5, 10, 15.
	GroundTruthP map[int]float64
}

// figure2ContribTops are the tops averaged for the contribution metric.
var figure2ContribTops = []int{5, 10, 15, 20, 30}

// Figure2 analyses the Image CLEF ground-truth query graphs.
func Figure2(s *Suite) *Figure2Result {
	inst := s.ImageCLEF
	r := s.NewRunner(inst)
	g := s.World.Graph

	res := &Figure2Result{
		Lengths:          []int{3, 4, 5},
		Contribution:     make(map[int]float64),
		CategoryRatio:    make(map[int]float64),
		ExtraEdgeDensity: make(map[int]float64),
		CycleCount:       make(map[int]int),
		GroundTruthP:     make(map[int]float64),
	}

	// Per-length structural statistics plus the per-length article sets
	// needed for the contribution runs.
	type queryCycles struct {
		q        *dataset.Query
		perLen   map[int][]kb.NodeID
		features map[kb.NodeID]float64
	}
	var all []queryCycles
	catSum := make(map[int]float64)
	denSum := make(map[int]float64)
	cntSum := make(map[int]int)
	queriesWith := make(map[int]int)
	for qi := range inst.Queries {
		q := &inst.Queries[qi]
		gt := inst.GroundTruth[q.ID]
		if len(gt) == 0 {
			continue
		}
		feats := make(map[kb.NodeID]float64, len(gt))
		arts := make([]kb.NodeID, 0, len(gt))
		for _, f := range gt {
			feats[f.Article] = f.Weight
			arts = append(arts, f.Article)
		}
		start := q.Entities[0]
		allowed := motif.InducedNodes(g, start, arts)
		ce := motif.NewCycleEnumerator(g, allowed)
		// See CycleEnumerator.ReciprocalArticleEdges: keeps the synthetic
		// subgraphs at Wikipedia-like sparsity for this analysis.
		ce.ReciprocalArticleEdges = true
		cycles := ce.Enumerate(start, 3, 5)
		stats := ce.Analyze(cycles)
		qc := queryCycles{q: q, perLen: make(map[int][]kb.NodeID), features: feats}
		for _, l := range res.Lengths {
			if st, ok := stats[l]; ok {
				catSum[l] += st.CategoryRatio
				denSum[l] += st.ExtraEdgeDensity
				cntSum[l] += st.Count
				queriesWith[l]++
			}
			qc.perLen[l] = ce.ArticlesOnCycles(cycles, l)
		}
		all = append(all, qc)
	}
	for _, l := range res.Lengths {
		if queriesWith[l] > 0 {
			res.CategoryRatio[l] = catSum[l] / float64(queriesWith[l])
			res.ExtraEdgeDensity[l] = denSum[l] / float64(queriesWith[l])
		}
		res.CycleCount[l] = cntSum[l]
	}

	// Contribution: precision using only length-L cycle articles as
	// expansion features, relative to the full ground-truth graph,
	// averaged over the small tops.
	runFor := func(sel func(qc queryCycles) []core.Feature) eval.Run {
		run := make(eval.Run, len(all))
		for _, qc := range all {
			qg := core.GroundTruthGraph(qc.q.Entities, sel(qc))
			node := r.Expander.BuildQuery(qc.q.Text, qg)
			run[qc.q.ID] = core.ResultNames(r.Searcher.Search(node, RunDepth))
		}
		return run
	}
	fullRun := runFor(func(qc queryCycles) []core.Feature {
		feats := make([]core.Feature, 0, len(qc.features))
		for a, w := range qc.features {
			feats = append(feats, core.Feature{Article: a, Weight: w})
		}
		core.SortFeatures(feats)
		return feats
	})
	fullP := meanOverTops(inst, fullRun, figure2ContribTops)
	for _, l := range res.Lengths {
		ln := l
		run := runFor(func(qc queryCycles) []core.Feature {
			var feats []core.Feature
			for _, a := range qc.perLen[ln] {
				feats = append(feats, core.Feature{Article: a, Weight: qc.features[a]})
			}
			core.SortFeatures(feats)
			return feats
		})
		if fullP > 0 {
			res.Contribution[l] = meanOverTops(inst, run, figure2ContribTops) / fullP
		}
	}

	// Ground-truth precision at the paper's quoted tops.
	ubRun := r.SQEUB()
	for _, k := range []int{1, 5, 10, 15} {
		res.GroundTruthP[k] = eval.MeanPrecisionAt(inst.Qrels, ubRun, k)
	}
	return res
}

// meanOverTops averages mean precision over several tops.
func meanOverTops(inst *dataset.Instance, run eval.Run, tops []int) float64 {
	var sum float64
	for _, k := range tops {
		sum += eval.MeanPrecisionAt(inst.Qrels, run, k)
	}
	return sum / float64(len(tops))
}

// String renders Figure 2 as three small tables.
func (f *Figure2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: ground-truth cycle analysis\n")
	fmt.Fprintf(&sb, "%-22s", "cycle length")
	for _, l := range f.Lengths {
		fmt.Fprintf(&sb, "%10d", l)
	}
	sb.WriteByte('\n')
	rows := []struct {
		name string
		vals map[int]float64
	}{
		{"(a) contribution", f.Contribution},
		{"(b) category ratio", f.CategoryRatio},
		{"(c) extra-edge dens.", f.ExtraEdgeDensity},
	}
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-22s", row.name)
		for _, l := range f.Lengths {
			fmt.Fprintf(&sb, "%10.3f", row.vals[l])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-22s", "cycles found")
	for _, l := range f.Lengths {
		fmt.Fprintf(&sb, "%10d", f.CycleCount[l])
	}
	sb.WriteByte('\n')
	var tops []int
	for k := range f.GroundTruthP {
		tops = append(tops, k)
	}
	sort.Ints(tops)
	sb.WriteString("ground-truth precision:")
	for _, k := range tops {
		fmt.Fprintf(&sb, " P@%d=%.3f", k, f.GroundTruthP[k])
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Figure5 reproduces paper Figure 5: the percentage improvement of
// SQE_T, SQE_T&S and SQE_S over the best baseline at each top, computed
// from the Table 1 reports.
func Figure5(t1 *Table1Result) *Figure {
	best := eval.BestOf(t1.Reports["QL_Q"], t1.Reports["QL_E"], t1.Reports["QL_Q&E"])
	fig := &Figure{
		Title: "Figure 5: % improvement over best(QL_Q, QL_E, QL_Q&E) — Image CLEF",
		Tops:  eval.Tops,
		Unit:  "% improvement",
	}
	for _, name := range []string{"SQE_T", "SQE_T&S", "SQE_S"} {
		s := Series{Name: name, Values: make(map[int]float64)}
		for _, k := range eval.Tops {
			s.Values[k] = eval.PercentGain(t1.Reports[name].Mean[k], best[k])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Figure6 reproduces paper Figure 6 for one dataset: the percentage
// improvement of SQE_C (M), SQE_C (A) and the isolated expansion
// features (Q_X) over the best baseline execution at each top.
func Figure6(t2 *Table2Result) *Figure {
	best := eval.BestOf(
		t2.Reports["QL_Q"], t2.Reports["QL_E (M)"], t2.Reports["QL_E (A)"],
		t2.Reports["QL_Q&E (M)"], t2.Reports["QL_Q&E (A)"],
	)
	fig := &Figure{
		Title: fmt.Sprintf("Figure 6 (%s): %% improvement over best baseline", t2.Dataset),
		Tops:  eval.Tops,
		Unit:  "% improvement",
	}
	for _, name := range []string{"SQE_C (M)", "SQE_C (A)", "Q_X"} {
		s := Series{Name: name, Values: make(map[int]float64)}
		for _, k := range eval.Tops {
			s.Values[k] = eval.PercentGain(t2.Reports[name].Mean[k], best[k])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
)

// LoadBucket is one latency-histogram bucket: Count observations at or
// under LeMs milliseconds (cumulative, Prometheus-style).
type LoadBucket struct {
	LeMs  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// LoadBenchResult is the artifact cmd/sqe-load writes
// (BENCH_distributed.json) and cmd/bench-check gates. The correctness
// fields — zero transport errors, zero degraded responses on a healthy
// topology, the SLO verdict — are the contract; the latency numbers
// themselves are one machine's measurement and are gated only through
// the SLO flag, which uses a deliberately generous bound.
type LoadBenchResult struct {
	// Target describes what was load-tested ("self-serve distributed
	// S=2" or an external URL).
	Target string `json:"target"`
	// OpenLoop records the generator discipline: requests fire on the
	// clock regardless of completions, so a slow server accumulates
	// in-flight work instead of silently lowering the offered rate.
	OpenLoop   bool    `json:"open_loop"`
	RateHz     float64 `json:"rate_hz"`
	DurationS  float64 `json:"duration_s"`
	GOMAXPROCS int     `json:"gomaxprocs"`

	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	// Errors counts transport failures and non-2xx/non-429 statuses.
	Errors int64 `json:"errors"`
	// Shed counts 429s from admission control — backpressure, not
	// failure, so they are tallied separately.
	Shed int64 `json:"shed"`
	// Degraded counts 200s whose results were degraded.
	Degraded int64 `json:"degraded"`

	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	// SLOp99Ms is the p99 bound the run was gated against; SLOMet is
	// the verdict over the successful requests' latency distribution.
	SLOp99Ms float64 `json:"slo_p99_ms"`
	SLOMet   bool    `json:"slo_met"`

	Histogram []LoadBucket `json:"histogram"`
}

// JSON renders the artifact.
func (r *LoadBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func (r *LoadBenchResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "load %s: %.0f req/s for %.1fs (open loop)\n", r.Target, r.RateHz, r.DurationS)
	fmt.Fprintf(&sb, "  %d requests: %d completed, %d errors, %d shed, %d degraded\n",
		r.Requests, r.Completed, r.Errors, r.Shed, r.Degraded)
	fmt.Fprintf(&sb, "  latency p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs)
	verdict := "MET"
	if !r.SLOMet {
		verdict = "MISSED"
	}
	fmt.Fprintf(&sb, "  SLO p99 <= %.0fms: %s\n", r.SLOp99Ms, verdict)
	return sb.String()
}

// LoadPercentiles fills the percentile and histogram fields from the
// sorted successful-request latencies (milliseconds). Exported so the
// generator and tests share one definition of the artifact's numbers.
func (r *LoadBenchResult) LoadPercentiles(sortedMs []float64) {
	pct := func(p float64) float64 {
		if len(sortedMs) == 0 {
			return 0
		}
		i := int(p * float64(len(sortedMs)-1))
		return sortedMs[i]
	}
	r.P50Ms, r.P90Ms, r.P99Ms = pct(0.50), pct(0.90), pct(0.99)
	if n := len(sortedMs); n > 0 {
		r.MaxMs = sortedMs[n-1]
	}
	bounds := []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}
	r.Histogram = make([]LoadBucket, 0, len(bounds)+1)
	for _, le := range bounds {
		var count int64
		for _, v := range sortedMs {
			if v > le {
				break
			}
			count++
		}
		r.Histogram = append(r.Histogram, LoadBucket{LeMs: le, Count: count})
	}
	// The +Inf bucket, rendered as le_ms 0 would be ambiguous; use -1.
	r.Histogram = append(r.Histogram, LoadBucket{LeMs: -1, Count: int64(len(sortedMs))})
	r.SLOMet = r.P99Ms <= r.SLOp99Ms && r.Errors == 0
}

package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/motif"
	"repro/internal/prf"
	"repro/internal/search"
)

// SigAlpha is the significance level of the paper's daggers (p < 0.05).
const SigAlpha = 0.05

// Row is one line of a precision table.
type Row struct {
	Name string
	// Mean maps top → mean precision.
	Mean map[int]float64
	// Sig maps top → whether the improvement over the baseline is
	// statistically significant (rendered as †).
	Sig map[int]bool
	// Gain maps top → percentage gain vs the row's reference (Table 3's
	// %G columns); nil when the table has no gain columns.
	Gain map[int]float64
}

// PrecisionTable is a paper-style precision table.
type PrecisionTable struct {
	Title string
	Tops  []int
	Rows  []Row
	// ShowGain adds a %G column after every precision column.
	ShowGain bool
}

// String renders the table as aligned text.
func (t *PrecisionTable) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	// Header.
	fmt.Fprintf(&sb, "%-14s", "")
	for _, k := range t.Tops {
		fmt.Fprintf(&sb, "%9s", fmt.Sprintf("P@%d", k))
		if t.ShowGain {
			fmt.Fprintf(&sb, "%9s", "%G")
		}
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-14s", r.Name)
		for _, k := range t.Tops {
			cell := fmt.Sprintf("%.3f", r.Mean[k])
			if r.Sig[k] {
				cell += "†"
			}
			fmt.Fprintf(&sb, "%9s", cell)
			if t.ShowGain {
				if r.Gain == nil {
					fmt.Fprintf(&sb, "%9s", "-")
				} else {
					fmt.Fprintf(&sb, "%9s", fmt.Sprintf("%+.2f", r.Gain[k]))
				}
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// rowFromReport converts an eval report into a Row, marking significance
// against the element-wise best baseline when basePerQuery is non-nil.
func rowFromReport(name string, rep *eval.Report, basePerQuery map[int][]float64, tops []int) Row {
	r := Row{Name: name, Mean: make(map[int]float64), Sig: make(map[int]bool)}
	for _, k := range tops {
		r.Mean[k] = rep.Mean[k]
		if basePerQuery != nil {
			tstat, p := eval.PairedTTest(rep.PerQuery[k], basePerQuery[k])
			r.Sig[k] = tstat > 0 && p < SigAlpha
		}
	}
	return r
}

// Table1Result reproduces paper Table 1: the SQE configuration study on
// Image CLEF with manually selected entities.
type Table1Result struct {
	Table PrecisionTable
	// Reports keyed by row name, for downstream figures and tests.
	Reports map[string]*eval.Report
	// UBRatioWorst and UBRatioAvg are the paper's "SQE reaches X% of the
	// upper bound" statistics (71.41% worst case, 85.86% average).
	UBRatioWorst float64
	UBRatioAvg   float64
}

// Table1 runs the Image CLEF configuration study.
func Table1(s *Suite) *Table1Result {
	r := s.NewRunner(s.ImageCLEF)
	reports := map[string]*eval.Report{
		"QL_Q":    r.Evaluate("QL_Q", r.QLQ()),
		"QL_E":    r.Evaluate("QL_E", r.QLE(true)),
		"QL_Q&E":  r.Evaluate("QL_Q&E", r.QLQE(true)),
		"SQE_T":   r.Evaluate("SQE_T", r.SQE(motif.SetT, true)),
		"SQE_T&S": r.Evaluate("SQE_T&S", r.SQE(motif.SetTS, true)),
		"SQE_S":   r.Evaluate("SQE_S", r.SQE(motif.SetS, true)),
		"SQE_UB":  r.Evaluate("SQE_UB", r.SQEUB()),
	}
	base := eval.BestPerQuery(reports["QL_Q"], reports["QL_E"], reports["QL_Q&E"])
	res := &Table1Result{
		Table:   PrecisionTable{Title: "Table 1: Image CLEF configuration study (manual entities)", Tops: eval.Tops},
		Reports: reports,
	}
	for _, name := range []string{"QL_Q", "QL_E", "QL_Q&E"} {
		res.Table.Rows = append(res.Table.Rows, rowFromReport(name, reports[name], nil, eval.Tops))
	}
	for _, name := range []string{"SQE_T", "SQE_T&S", "SQE_S"} {
		res.Table.Rows = append(res.Table.Rows, rowFromReport(name, reports[name], base, eval.Tops))
	}
	res.Table.Rows = append(res.Table.Rows, rowFromReport("SQE_UB", reports["SQE_UB"], nil, eval.Tops))

	// Upper-bound ratios over the SQE rows and all tops.
	worst := 1.0
	var sum float64
	var n int
	for _, name := range []string{"SQE_T", "SQE_T&S", "SQE_S"} {
		for _, k := range eval.Tops {
			ub := reports["SQE_UB"].Mean[k]
			if ub <= 0 {
				continue
			}
			ratio := reports[name].Mean[k] / ub
			if ratio < worst {
				worst = ratio
			}
			sum += ratio
			n++
		}
	}
	describe(n > 0, "Table1: no upper-bound ratios computed")
	res.UBRatioWorst = worst
	res.UBRatioAvg = sum / float64(n)
	return res
}

// Table2Result reproduces paper Tables 2a/2b/2c: the SQE_C evaluation on
// one dataset with manual and automatic entities.
type Table2Result struct {
	Dataset string
	Table   PrecisionTable
	Reports map[string]*eval.Report
}

// Table2 runs the SQE_C evaluation for inst.
func Table2(s *Suite, inst *dataset.Instance) *Table2Result {
	r := s.NewRunner(inst)
	reports := map[string]*eval.Report{
		"QL_Q":       r.Evaluate("QL_Q", r.QLQ()),
		"QL_E (M)":   r.Evaluate("QL_E (M)", r.QLE(true)),
		"QL_E (A)":   r.Evaluate("QL_E (A)", r.QLE(false)),
		"QL_Q&E (M)": r.Evaluate("QL_Q&E (M)", r.QLQE(true)),
		"QL_Q&E (A)": r.Evaluate("QL_Q&E (A)", r.QLQE(false)),
		"Q_X":        r.Evaluate("Q_X", r.QX(true)),
		"SQE_C (M)":  r.Evaluate("SQE_C (M)", r.SQEC(true)),
		"SQE_C (A)":  r.Evaluate("SQE_C (A)", r.SQEC(false)),
	}
	base := eval.BestPerQuery(
		reports["QL_Q"], reports["QL_E (M)"], reports["QL_E (A)"],
		reports["QL_Q&E (M)"], reports["QL_Q&E (A)"],
	)
	res := &Table2Result{
		Dataset: inst.Name,
		Table:   PrecisionTable{Title: fmt.Sprintf("Table 2 (%s): SQE_C evaluation", inst.Name), Tops: eval.Tops},
		Reports: reports,
	}
	for _, name := range []string{"QL_Q", "QL_E (M)", "QL_E (A)", "QL_Q&E (M)", "QL_Q&E (A)", "Q_X"} {
		res.Table.Rows = append(res.Table.Rows, rowFromReport(name, reports[name], nil, eval.Tops))
	}
	for _, name := range []string{"SQE_C (M)", "SQE_C (A)"} {
		res.Table.Rows = append(res.Table.Rows, rowFromReport(name, reports[name], base, eval.Tops))
	}
	return res
}

// Table3Tops are the tops the paper reports for the PRF comparison.
var Table3Tops = []int{5, 10, 15, 20, 30}

// Table3Result reproduces paper Tables 3a/3b/3c: PRF alone collapses,
// SQE∘PRF holds or improves on SQE_C. %G columns are relative to the
// corresponding automatic rows of Table 2, as in the paper.
type Table3Result struct {
	Dataset string
	Table   PrecisionTable
	Reports map[string]*eval.Report
}

// Table3 runs the PRF comparison for inst; t2 supplies the reference
// precision rows (it must come from the same suite and instance).
func Table3(s *Suite, inst *dataset.Instance, t2 *Table2Result) *Table3Result {
	describe(t2.Dataset == inst.Name, "Table3: reference Table2 is for %q, want %q", t2.Dataset, inst.Name)
	r := s.NewRunner(inst)
	// Pure relevance-model replacement for the PRF-alone rows (the
	// configuration whose collapse the paper demonstrates)...
	cfg := prf.DefaultConfig()
	// ...but the SQE∘PRF combination keeps the SQE query and interpolates
	// the feedback model into it ("SQE is used to generate a query, then
	// this query is used by PRF to reformulate"), i.e. RM3 on top of the
	// expanded query.
	cfgSQE := cfg
	cfgSQE.OrigWeight = 0.5
	reports := map[string]*eval.Report{
		"PRF_Q":     r.Evaluate("PRF_Q", r.PRFRun(cfg, func(q *dataset.Query) search.Node { return r.Expander.QLQuery(q.Text) })),
		"PRF_E":     r.Evaluate("PRF_E", r.PRFRun(cfg, func(q *dataset.Query) search.Node { return r.Expander.QLEntities(r.Entities(q, false)) })),
		"PRF_Q&E":   r.Evaluate("PRF_Q&E", r.PRFRun(cfg, func(q *dataset.Query) search.Node { return r.Expander.QLQueryEntities(q.Text, r.Entities(q, false)) })),
		"SQE_C/PRF": r.Evaluate("SQE_C/PRF", r.SQECPRF(cfgSQE, false)),
	}
	refs := map[string]string{
		"PRF_Q":     "QL_Q",
		"PRF_E":     "QL_E (A)",
		"PRF_Q&E":   "QL_Q&E (A)",
		"SQE_C/PRF": "SQE_C (A)",
	}
	res := &Table3Result{
		Dataset: inst.Name,
		Table: PrecisionTable{
			Title:    fmt.Sprintf("Table 3 (%s): PRF comparison (%%G vs Table 2 automatic rows)", inst.Name),
			Tops:     Table3Tops,
			ShowGain: true,
		},
		Reports: reports,
	}
	for _, name := range []string{"PRF_Q", "PRF_E", "PRF_Q&E", "SQE_C/PRF"} {
		row := rowFromReport(name, reports[name], nil, Table3Tops)
		ref := t2.Reports[refs[name]]
		row.Gain = make(map[int]float64, len(Table3Tops))
		for _, k := range Table3Tops {
			row.Gain[k] = eval.PercentGain(reports[name].Mean[k], ref.Mean[k])
		}
		res.Table.Rows = append(res.Table.Rows, row)
	}
	return res
}

// Table4Result reproduces paper Table 4: expansion times per dataset and
// motif configuration, plus the total pipeline time.
type Table4Result struct {
	Datasets []string
	// Expansion[set][dataset] is the time to build all query graphs.
	Expansion map[motif.Set]map[string]time.Duration
	// Total[dataset] is the full SQE_C pipeline time.
	Total map[string]time.Duration
}

// Table4 measures expansion and total times on every dataset. Entities
// are selected manually, matching the paper's configuration experiments.
func Table4(s *Suite) *Table4Result {
	res := &Table4Result{
		Expansion: map[motif.Set]map[string]time.Duration{
			motif.SetT:  {},
			motif.SetTS: {},
			motif.SetS:  {},
		},
		Total: map[string]time.Duration{},
	}
	for _, inst := range s.Instances() {
		r := s.NewRunner(inst)
		res.Datasets = append(res.Datasets, inst.Name)
		for _, set := range []motif.Set{motif.SetT, motif.SetTS, motif.SetS} {
			res.Expansion[set][inst.Name] = r.ExpansionTime(set, true)
		}
		res.Total[inst.Name] = r.TotalTime(true)
	}
	return res
}

// String renders Table 4 in the paper's layout (milliseconds).
func (t *Table4Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 4: execution times (ms)\n")
	fmt.Fprintf(&sb, "%-12s", "")
	for _, d := range t.Datasets {
		fmt.Fprintf(&sb, "%14s", d)
	}
	sb.WriteByte('\n')
	for _, set := range []motif.Set{motif.SetT, motif.SetTS, motif.SetS} {
		fmt.Fprintf(&sb, "%-12s", "SQE_"+set.String())
		for _, d := range t.Datasets {
			fmt.Fprintf(&sb, "%14.2f", float64(t.Expansion[set][d].Microseconds())/1000)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-12s", "Total Time")
	for _, d := range t.Datasets {
		fmt.Fprintf(&sb, "%14.2f", float64(t.Total[d].Microseconds())/1000)
	}
	sb.WriteByte('\n')
	return sb.String()
}

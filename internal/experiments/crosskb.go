package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/motif"
	"repro/internal/wikigen"
)

// CrossKBResult contrasts motif-template rankings on two KB profiles:
// the Wikipedia-like default and a taxonomy-like "ontology" profile.
// It operationalises the paper's conclusion that "there are many KBs and
// probably each has its own relevant structures": the same miner run on
// a structurally different KB ranks different templates on top.
type CrossKBResult struct {
	Wikipedia *MiningResult
	Ontology  *MiningResult
}

// CrossKBMining generates the ontology-profile world, builds its own
// Image CLEF-like instance and mines templates on both KBs.
func CrossKBMining(s *Suite, scale dataset.Scale) (*CrossKBResult, error) {
	cfg := wikigen.OntologyConfig()
	if scale == dataset.ScaleSmall {
		small := wikigen.SmallConfig()
		cfg.Domains = small.Domains
		cfg.TopicsPerDomain = small.TopicsPerDomain
		cfg.ArticlesPerTopic = small.ArticlesPerTopic
		cfg.BackgroundTerms = small.BackgroundTerms
		cfg.HubArticles = small.HubArticles
	}
	world, err := wikigen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	inst, err := dataset.BuildImageCLEF(world, scale)
	if err != nil {
		return nil, err
	}
	ontoSuite := &Suite{World: world, ImageCLEF: inst}
	return &CrossKBResult{
		Wikipedia: MineMotifs(s, s.ImageCLEF),
		Ontology:  MineMotifs(ontoSuite, inst),
	}, nil
}

// BestByPrecision returns the highest-precision template (among those
// selecting at least minPerQuery articles per query) of a ranking.
func BestByPrecision(m *MiningResult, minPerQuery float64) motif.TemplateScore {
	best := motif.TemplateScore{}
	for _, sc := range m.Scores {
		if sc.AvgSelected >= minPerQuery && sc.Precision > best.Precision {
			best = sc
		}
	}
	return best
}

// String renders both rankings and the headline comparison.
func (c *CrossKBResult) String() string {
	var sb strings.Builder
	sb.WriteString("Cross-KB motif mining (the paper's \"other KBs, other structures\" conjecture)\n\n")
	sb.WriteString("Wikipedia-like profile:\n")
	sb.WriteString(c.Wikipedia.String())
	sb.WriteString("\nOntology-like profile (taxonomic categories, sparse links):\n")
	sb.WriteString(c.Ontology.String())
	wb := BestByPrecision(c.Wikipedia, 0.5)
	ob := BestByPrecision(c.Ontology, 0.5)
	fmt.Fprintf(&sb, "\nbest precision template: wikipedia=%s (P=%.3f, %.1f/qry) ontology=%s (P=%.3f, %.1f/qry)\n",
		wb.Template, wb.Precision, wb.AvgSelected, ob.Template, ob.Precision, ob.AvgSelected)
	return sb.String()
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/eval"
)

// SigMatrixResult is the pairwise significance matrix of a Table-2 run
// set at one top: cell (row, col) holds the paired two-tailed p-value of
// row vs col, signed by the direction of the difference. The paper only
// tests SQE against the baselines; the full matrix answers the follow-up
// questions (is (M) significantly better than (A)? is QL_E better than
// QL_Q?).
type SigMatrixResult struct {
	Dataset string
	Top     int
	Runs    []string
	// P[i][j] is the two-tailed p-value between Runs[i] and Runs[j],
	// negative when Runs[i]'s mean is below Runs[j]'s. Diagonal is 1.
	P [][]float64
}

// SigMatrix computes the matrix from an existing Table-2 result at the
// given precision cutoff.
func SigMatrix(t2 *Table2Result, top int) *SigMatrixResult {
	runs := []string{"QL_Q", "QL_E (M)", "QL_E (A)", "QL_Q&E (M)", "QL_Q&E (A)", "Q_X", "SQE_C (M)", "SQE_C (A)"}
	res := &SigMatrixResult{Dataset: t2.Dataset, Top: top, Runs: runs}
	res.P = make([][]float64, len(runs))
	for i := range runs {
		res.P[i] = make([]float64, len(runs))
		for j := range runs {
			if i == j {
				res.P[i][j] = 1
				continue
			}
			a := t2.Reports[runs[i]].PerQuery[top]
			b := t2.Reports[runs[j]].PerQuery[top]
			tstat, p := eval.PairedTTest(a, b)
			if tstat < 0 {
				p = -p
			}
			res.P[i][j] = p
		}
	}
	return res
}

// String renders the matrix; cells show the p-value, starred when
// p < 0.05, with a leading '-' when the row run is *worse* than the
// column run.
func (m *SigMatrixResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pairwise significance matrix (%s, P@%d; row vs column, * = p<0.05)\n", m.Dataset, m.Top)
	fmt.Fprintf(&sb, "%-12s", "")
	for j := range m.Runs {
		fmt.Fprintf(&sb, "%9s", abbrev(m.Runs[j]))
	}
	sb.WriteByte('\n')
	for i, name := range m.Runs {
		fmt.Fprintf(&sb, "%-12s", abbrev(name))
		for j := range m.Runs {
			if i == j {
				fmt.Fprintf(&sb, "%9s", "·")
				continue
			}
			p := m.P[i][j]
			cell := fmt.Sprintf("%+.3f", p)
			if p > -0.05 && p < 0.05 {
				cell += "*"
			}
			fmt.Fprintf(&sb, "%9s", cell)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// abbrev shortens run names for matrix columns.
func abbrev(name string) string {
	r := strings.NewReplacer("QL_Q&E", "Q&E", "QL_E", "E", "QL_Q", "Q", "SQE_C", "SQE", " (M)", "m", " (A)", "a")
	return r.Replace(name)
}

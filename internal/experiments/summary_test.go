package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/eval"
)

func TestSummaryMetrics(t *testing.T) {
	s := smallSuite(t)
	res := SummaryMetrics(s, s.ImageCLEF)
	if len(res.Summaries) != 3 {
		t.Fatalf("summaries = %d", len(res.Summaries))
	}
	for _, sum := range res.Summaries {
		if sum.NumQueries != len(s.ImageCLEF.Queries) {
			t.Errorf("%s: NumQueries = %d", sum.Name, sum.NumQueries)
		}
		if sum.MAP < 0 || sum.MAP > 1 || sum.MRR < 0 || sum.MRR > 1 {
			t.Errorf("%s: metrics out of range: %+v", sum.Name, sum)
		}
	}
	// SQE must improve MRR over the baseline (the first relevant doc
	// arrives earlier with expansion).
	var qlq, sqe *eval.Summary
	for _, sum := range res.Summaries {
		switch sum.Name {
		case "QL_Q":
			qlq = sum
		case "SQE_C (M)":
			sqe = sum
		}
	}
	if sqe.MRR <= qlq.MRR {
		t.Errorf("SQE MRR %.3f not above baseline %.3f", sqe.MRR, qlq.MRR)
	}
	if res.Robustness < -1 || res.Robustness > 1 {
		t.Errorf("robustness index out of range: %f", res.Robustness)
	}
	if !strings.Contains(res.String(), "MAP") {
		t.Error("rendering incomplete")
	}
}

func TestExportTRECRoundTrip(t *testing.T) {
	s := smallSuite(t)
	dir := t.TempDir()
	files, err := ExportTREC(s, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 12 { // 3 datasets × (1 qrels + 3 runs)
		t.Fatalf("wrote %d files", len(files))
	}
	// Round-trip the Image CLEF qrels and the baseline run, and verify
	// the reloaded artifacts evaluate identically.
	qf, err := os.Open(filepath.Join(dir, "imageclef.qrels"))
	if err != nil {
		t.Fatal(err)
	}
	defer qf.Close()
	qrels, err := eval.ReadQrelsTREC(qf)
	if err != nil {
		t.Fatal(err)
	}
	if len(qrels) != len(s.ImageCLEF.Queries) {
		t.Errorf("qrels queries = %d", len(qrels))
	}
	rf, err := os.Open(filepath.Join(dir, "imageclef-qlq.run"))
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	run, err := eval.ReadRunTREC(rf)
	if err != nil {
		t.Fatal(err)
	}
	r := s.NewRunner(s.ImageCLEF)
	orig := r.QLQ()
	for id := range orig {
		if len(orig[id]) == 0 {
			continue
		}
		if len(run[id]) != len(orig[id]) {
			t.Fatalf("%s: run depth %d vs %d", id, len(run[id]), len(orig[id]))
		}
		if run[id][0] != orig[id][0] {
			t.Fatalf("%s: top doc %s vs %s", id, run[id][0], orig[id][0])
		}
	}
	p1 := eval.MeanPrecisionAt(s.ImageCLEF.Qrels, orig, 10)
	p2 := eval.MeanPrecisionAt(qrels, run, 10)
	if p1 != p2 {
		t.Errorf("round-tripped P@10 %f != %f", p2, p1)
	}
}

func TestSigMatrix(t *testing.T) {
	s := smallSuite(t)
	t2 := Table2(s, s.ImageCLEF)
	m := SigMatrix(t2, 10)
	if len(m.Runs) != 8 || len(m.P) != 8 {
		t.Fatalf("matrix shape: %d runs, %d rows", len(m.Runs), len(m.P))
	}
	for i := range m.P {
		if m.P[i][i] != 1 {
			t.Errorf("diagonal [%d] = %f", i, m.P[i][i])
		}
		for j := range m.P[i] {
			// Antisymmetric in sign, symmetric in magnitude.
			if i != j {
				pij, pji := m.P[i][j], m.P[j][i]
				if absf(absf(pij)-absf(pji)) > 1e-9 {
					t.Errorf("p magnitudes differ: [%d][%d]=%f [%d][%d]=%f", i, j, pij, j, i, pji)
				}
				if pij != 0 && pji != 0 && (pij > 0) == (pji > 0) && absf(pij) < 0.999 {
					t.Errorf("signs not opposite: [%d][%d]=%f [%d][%d]=%f", i, j, pij, j, i, pji)
				}
			}
		}
	}
	if !strings.Contains(m.String(), "SQEm") {
		t.Error("rendering incomplete")
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/kb"
	"repro/internal/motif"
	"repro/internal/search"
)

// StageTimings breaks one query's (or one run's) pipeline wall-clock
// into the paper's cost stages (Section 4.4 flags expansion/retrieval
// cost as the engineering target): entity resolution, motif search,
// expanded-query construction, and retrieval.
type StageTimings struct {
	EntityLink  time.Duration
	MotifSearch time.Duration
	QueryBuild  time.Duration
	Retrieval   time.Duration
}

// Total sums the stages.
func (t StageTimings) Total() time.Duration {
	return t.EntityLink + t.MotifSearch + t.QueryBuild + t.Retrieval
}

// Add accumulates o into t.
func (t *StageTimings) Add(o StageTimings) {
	t.EntityLink += o.EntityLink
	t.MotifSearch += o.MotifSearch
	t.QueryBuild += o.QueryBuild
	t.Retrieval += o.Retrieval
}

// PipelineStats aggregates stage timings and retrieval counters over one
// or more queries. It is the unit the Engine threads through the SQE
// pipeline and that cmd/sqe-bench and cmd/sqe-search surface, so wins on
// the BENCH trajectory can be attributed to a stage instead of guessed.
type PipelineStats struct {
	Stages StageTimings
	// Search accumulates the retrieval evaluator's counters (candidates
	// examined, postings advanced, heap traffic) over every retrieval.
	Search search.SearchStats
	// Queries counts the pipeline executions aggregated here.
	Queries int
	// Retrievals counts the individual index retrievals (SQE_C runs
	// three per query).
	Retrievals int
	// Features counts the expansion features produced by motif search.
	Features int
}

// Add accumulates o into p.
func (p *PipelineStats) Add(o *PipelineStats) {
	p.Stages.Add(o.Stages)
	p.Search.Add(o.Search)
	p.Queries += o.Queries
	p.Retrievals += o.Retrievals
	p.Features += o.Features
}

// String renders a per-stage breakdown with percentages of the pipeline
// total, followed by the retrieval counters.
func (p *PipelineStats) String() string {
	total := p.Stages.Total()
	pct := func(d time.Duration) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(d) / float64(total)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline: %d queries, %d retrievals, %d expansion features\n", p.Queries, p.Retrievals, p.Features)
	fmt.Fprintf(&sb, "  entity-link  %10v  %5.1f%%\n", p.Stages.EntityLink.Round(time.Microsecond), pct(p.Stages.EntityLink))
	fmt.Fprintf(&sb, "  motif-search %10v  %5.1f%%\n", p.Stages.MotifSearch.Round(time.Microsecond), pct(p.Stages.MotifSearch))
	fmt.Fprintf(&sb, "  query-build  %10v  %5.1f%%\n", p.Stages.QueryBuild.Round(time.Microsecond), pct(p.Stages.QueryBuild))
	fmt.Fprintf(&sb, "  retrieval    %10v  %5.1f%%\n", p.Stages.Retrieval.Round(time.Microsecond), pct(p.Stages.Retrieval))
	fmt.Fprintf(&sb, "  total        %10v\n", total.Round(time.Microsecond))
	fmt.Fprintf(&sb, "  search: %s", p.Search.String())
	return sb.String()
}

// BuildQueryGraphStats is BuildQueryGraph with the motif-search stage
// timed and the feature count recorded into ps (which may be nil).
func (e *Expander) BuildQueryGraphStats(queryNodes []kb.NodeID, set motif.Set, ps *PipelineStats) QueryGraph {
	start := time.Now()
	qg := e.BuildQueryGraph(queryNodes, set)
	if ps != nil {
		ps.Stages.MotifSearch += time.Since(start)
		ps.Features += len(qg.Features)
	}
	return qg
}

// BuildQueryStats is BuildQuery with the query-build stage timed into ps
// (which may be nil).
func (e *Expander) BuildQueryStats(userQuery string, qg QueryGraph, ps *PipelineStats) search.Node {
	start := time.Now()
	node := e.BuildQuery(userQuery, qg)
	if ps != nil {
		ps.Stages.QueryBuild += time.Since(start)
	}
	return node
}

package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/kb"
	"repro/internal/motif"
	"repro/internal/search"
)

// graph: Q ↔ {E1,E2}, all sharing category C; E1 additionally shares a
// second category so triangular counts differ.
func expander(t *testing.T) (*Expander, map[string]kb.NodeID) {
	t.Helper()
	b := kb.NewBuilder(8)
	ids := map[string]kb.NodeID{}
	for _, n := range []string{"Query Article", "First Expansion", "Second Expansion"} {
		id, err := b.AddArticle(n)
		if err != nil {
			t.Fatal(err)
		}
		ids[n] = id
	}
	c1, _ := b.AddCategory("Category:C1")
	c2, _ := b.AddCategory("Category:C2")
	ids["C1"], ids["C2"] = c1, c2
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.AddMembership(ids["Query Article"], c1))
	must(b.AddMembership(ids["First Expansion"], c1))
	must(b.AddMembership(ids["First Expansion"], c2))
	must(b.AddMembership(ids["Second Expansion"], c1))
	for _, e := range []string{"First Expansion", "Second Expansion"} {
		must(b.AddLink(ids["Query Article"], ids[e]))
		must(b.AddLink(ids[e], ids["Query Article"]))
	}
	g := b.Build()
	return NewExpander(g, analysis.Standard()), ids
}

func TestBuildQueryGraph(t *testing.T) {
	e, ids := expander(t)
	qg := e.BuildQueryGraph([]kb.NodeID{ids["Query Article"]}, motif.SetT)
	if len(qg.Features) != 2 {
		t.Fatalf("features = %+v", qg.Features)
	}
	arts := qg.ExpansionArticles()
	if arts[0] == ids["Query Article"] || arts[1] == ids["Query Article"] {
		t.Error("query node leaked into features")
	}
	// Both share exactly C1 with Q → one instance each; weights 1.
	for _, f := range qg.Features {
		if f.Weight != 1 {
			t.Errorf("weight = %v, want 1", f.Weight)
		}
	}
}

func TestMaxFeaturesCap(t *testing.T) {
	e, ids := expander(t)
	e.MaxFeatures = 1
	qg := e.BuildQueryGraph([]kb.NodeID{ids["Query Article"]}, motif.SetT)
	if len(qg.Features) != 1 {
		t.Errorf("cap ignored: %+v", qg.Features)
	}
}

func TestUniformFeatureWeights(t *testing.T) {
	e, ids := expander(t)
	e.UniformFeatureWeights = true
	qg := e.BuildQueryGraph([]kb.NodeID{ids["Query Article"]}, motif.SetTS)
	for _, f := range qg.Features {
		if f.Weight != 1 {
			t.Errorf("uniform weights violated: %+v", f)
		}
	}
}

func TestBuildQueryStructure(t *testing.T) {
	e, ids := expander(t)
	qg := e.BuildQueryGraph([]kb.NodeID{ids["Query Article"]}, motif.SetT)
	node := e.BuildQuery("user words", qg)
	s := node.String()
	// Three-part weight with the user query terms, entity phrase and
	// expansion phrases.
	for _, want := range []string{"#weight(", "user", "word", "#1(queri articl)", "#1(first expans)", "#1(second expans)"} {
		if !strings.Contains(s, want) {
			t.Errorf("query %q missing %q", s, want)
		}
	}
}

func TestBuildQueryEmptyParts(t *testing.T) {
	e, _ := expander(t)
	// No entities, no features: only the user part remains and the
	// query must still be non-empty and searchable.
	node := e.BuildQuery("hello world", QueryGraph{})
	if search.IsEmpty(node) {
		t.Error("query with only user part should not be empty")
	}
	// Everything empty → empty query.
	if !search.IsEmpty(e.BuildQuery("", QueryGraph{})) {
		t.Error("fully empty query should be empty")
	}
}

func TestBaselineBuilders(t *testing.T) {
	e, ids := expander(t)
	q := ids["Query Article"]
	if got := e.QLQuery("cable cars").String(); !strings.Contains(got, "cabl") {
		t.Errorf("QLQuery = %q", got)
	}
	if got := e.QLEntities([]kb.NodeID{q}).String(); !strings.Contains(got, "#1(queri articl)") {
		t.Errorf("QLEntities = %q", got)
	}
	qe := e.QLQueryEntities("cable cars", []kb.NodeID{q}).String()
	if !strings.Contains(qe, "cabl") || !strings.Contains(qe, "#1(queri articl)") {
		t.Errorf("QLQueryEntities = %q", qe)
	}
	qg := e.BuildQueryGraph([]kb.NodeID{q}, motif.SetT)
	qx := e.QLExpansionOnly(qg).String()
	if strings.Contains(qx, "cabl") || !strings.Contains(qx, "expans") {
		t.Errorf("QLExpansionOnly = %q", qx)
	}
}

func TestGroundTruthGraphCopies(t *testing.T) {
	nodes := []kb.NodeID{1}
	feats := []Feature{{Article: 2, Weight: 3}}
	qg := GroundTruthGraph(nodes, feats)
	nodes[0] = 99
	feats[0].Weight = 99
	if qg.QueryNodes[0] != 1 || qg.Features[0].Weight != 3 {
		t.Error("GroundTruthGraph must copy its inputs")
	}
}

func TestSortFeatures(t *testing.T) {
	f := []Feature{{Article: 3, Weight: 1}, {Article: 1, Weight: 2}, {Article: 2, Weight: 2}}
	SortFeatures(f)
	want := []Feature{{Article: 1, Weight: 2}, {Article: 2, Weight: 2}, {Article: 3, Weight: 1}}
	if !reflect.DeepEqual(f, want) {
		t.Errorf("SortFeatures = %+v", f)
	}
}

func TestSplice(t *testing.T) {
	runA := []string{"a1", "a2", "a3"}
	runB := []string{"a1", "b1", "b2", "b3"}
	runC := []string{"c1", "b1", "c2"}
	got := Splice(10,
		Segment{Run: runA, Upto: 2},
		Segment{Run: runB, Upto: 5},
		Segment{Run: runC},
	)
	// First 2 from A; B fills to 5 skipping the duplicate a1; C fills the
	// rest skipping duplicate b1.
	want := []string{"a1", "a2", "b1", "b2", "b3", "c1", "c2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Splice = %v, want %v", got, want)
	}
}

func TestSpliceLimit(t *testing.T) {
	got := Splice(3, Segment{Run: []string{"a", "b", "c", "d"}})
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Splice limit = %v", got)
	}
}

func TestSpliceC(t *testing.T) {
	mk := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = prefix + string(rune('0'+i/10)) + string(rune('0'+i%10))
		}
		return out
	}
	runT := mk("t", 300)
	runTS := mk("s", 300)
	runS := mk("u", 300)
	got := SpliceC(250, runT, runTS, runS)
	if len(got) != 250 {
		t.Fatalf("len = %d", len(got))
	}
	// Ranks 1-5 from T, 6-200 from TS, 201+ from S.
	if got[0] != "t00" || got[4] != "t04" {
		t.Errorf("head = %v", got[:5])
	}
	if got[5] != "s00" || got[199][0] != 's' {
		t.Errorf("middle segment wrong: got[5]=%s got[199]=%s", got[5], got[199])
	}
	if got[200][0] != 'u' {
		t.Errorf("tail segment wrong: %s", got[200])
	}
}

func TestSpliceEmptySegments(t *testing.T) {
	if got := Splice(5); len(got) != 0 {
		t.Errorf("no segments should splice to empty, got %v", got)
	}
	got := Splice(5, Segment{Run: nil, Upto: 3}, Segment{Run: []string{"x"}})
	if !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("empty first segment: %v", got)
	}
}

func TestResultNames(t *testing.T) {
	rs := []search.Result{{Name: "a"}, {Name: "b"}}
	if got := ResultNames(rs); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("ResultNames = %v", got)
	}
}

func TestDescribeGraph(t *testing.T) {
	e, ids := expander(t)
	qg := e.BuildQueryGraph([]kb.NodeID{ids["Query Article"]}, motif.SetT)
	s := e.DescribeGraph(qg, 1)
	if !strings.Contains(s, "Query Article") || !strings.Contains(s, "2 expansion features") {
		t.Errorf("DescribeGraph = %q", s)
	}
}

func TestPartWeightsNormalized(t *testing.T) {
	if w := (PartWeights{}).normalized(); w != DefaultPartWeights {
		t.Errorf("zero weights should default, got %+v", w)
	}
	custom := PartWeights{Query: 2, Entities: 0, Expansion: 1}
	if w := custom.normalized(); w != custom {
		t.Errorf("custom weights altered: %+v", w)
	}
}

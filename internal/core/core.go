// Package core implements Structural Query Expansion (SQE), the paper's
// primary contribution: the query-graph builder that materialises the
// structural motifs (Section 2.2), the query builder that assembles the
// three-part weighted expanded query (Section 2.3), and the SQE_C
// result-list combination (Section 2.2.1).
package core

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/kb"
	"repro/internal/motif"
	"repro/internal/search"
)

// Feature is an expansion feature: an article whose title will be added
// to the query, weighted by the number of motifs it appeared in.
type Feature struct {
	Article kb.NodeID
	// Weight is |m_a| for motif-built graphs, or an externally supplied
	// weight for ground-truth graphs.
	Weight float64
}

// QueryGraph is the paper's query graph: the query nodes plus the
// expansion nodes found around them.
type QueryGraph struct {
	QueryNodes []kb.NodeID
	Features   []Feature
}

// ExpansionArticles returns the expansion node IDs in feature order.
func (qg *QueryGraph) ExpansionArticles() []kb.NodeID {
	out := make([]kb.NodeID, len(qg.Features))
	for i, f := range qg.Features {
		out[i] = f.Article
	}
	return out
}

// Expander builds query graphs and expanded queries over a KB graph.
type Expander struct {
	graph    *kb.Graph
	matcher  *motif.Matcher
	analyzer analysis.Analyzer

	// Weights are the three-part combination weights (user query,
	// entity titles, expansion titles). The zero value means equal
	// thirds.
	Weights PartWeights
	// MaxFeatures caps the number of expansion features per query
	// (highest |m_a| first); 0 means unlimited, which is the paper's
	// configuration.
	MaxFeatures int
	// UniformFeatureWeights disables the |m_a|-proportional weighting
	// (ablation: every expansion feature weighs 1).
	UniformFeatureWeights bool
	// TitleWindowSlack switches title matching from exact phrases to
	// unordered windows of width len(title)+slack when non-negative
	// (Indri's #uwN; the looser proximity the paper's feature function
	// also supports). -1, the default, keeps exact phrase matching.
	TitleWindowSlack int
}

// PartWeights weights the three parts of the expanded query.
type PartWeights struct {
	Query     float64
	Entities  float64
	Expansion float64
}

// DefaultPartWeights are the three-part combination weights used when
// the Expander's Weights field is left zero: equal thirds, the natural
// reading of the paper's "three-part combination". The paper prescribes
// the within-part weighting (expansion features ∝ |m_a|) but not the
// part weights.
var DefaultPartWeights = PartWeights{Query: 1, Entities: 1, Expansion: 1}

// normalized returns the weights with the zero value defaulting to
// DefaultPartWeights.
func (w PartWeights) normalized() PartWeights {
	if w.Query == 0 && w.Entities == 0 && w.Expansion == 0 {
		return DefaultPartWeights
	}
	return w
}

// NewExpander returns an Expander with the paper's motif conditions.
func NewExpander(g *kb.Graph, a analysis.Analyzer) *Expander {
	return &Expander{graph: g, matcher: motif.NewMatcher(g), analyzer: a, TitleWindowSlack: -1}
}

// titleNode renders one title under the configured proximity operator.
func (e *Expander) titleNode(title string) search.Node {
	if e.TitleWindowSlack >= 0 {
		return search.TitleWindow(e.analyzer, title, e.TitleWindowSlack)
	}
	return search.TitlePhrase(e.analyzer, title)
}

// Matcher exposes the underlying motif matcher so callers can toggle the
// ablation switches (reciprocity, category conditions).
func (e *Expander) Matcher() *motif.Matcher { return e.matcher }

// Graph returns the KB graph the expander works on.
func (e *Expander) Graph() *kb.Graph { return e.graph }

// BuildQueryGraph runs motif search from queryNodes with the given motif
// set and returns the resulting query graph. Features arrive sorted by
// descending |m_a|.
func (e *Expander) BuildQueryGraph(queryNodes []kb.NodeID, set motif.Set) QueryGraph {
	matches := e.matcher.Expand(queryNodes, set)
	if e.MaxFeatures > 0 && len(matches) > e.MaxFeatures {
		matches = matches[:e.MaxFeatures]
	}
	qg := QueryGraph{QueryNodes: append([]kb.NodeID(nil), queryNodes...)}
	for _, m := range matches {
		w := float64(m.Motifs)
		if e.UniformFeatureWeights {
			w = 1
		}
		qg.Features = append(qg.Features, Feature{Article: m.Article, Weight: w})
	}
	return qg
}

// GroundTruthGraph wraps an externally supplied optimal query graph
// (paper's ground truth [10]) in the QueryGraph form used by the query
// builder, for the SQE^UB upper bound.
func GroundTruthGraph(queryNodes []kb.NodeID, features []Feature) QueryGraph {
	return QueryGraph{
		QueryNodes: append([]kb.NodeID(nil), queryNodes...),
		Features:   append([]Feature(nil), features...),
	}
}

// entityPart builds the #combine of query-node title phrases.
func (e *Expander) entityPart(queryNodes []kb.NodeID) search.Node {
	nodes := make([]search.Node, 0, len(queryNodes))
	for _, q := range queryNodes {
		nodes = append(nodes, e.titleNode(e.graph.Title(q)))
	}
	return search.Combine(nodes...)
}

// expansionPart builds the #weight over expansion-feature title phrases,
// each weighted proportionally to |m_a|.
func (e *Expander) expansionPart(features []Feature) search.Node {
	weights := make([]float64, 0, len(features))
	nodes := make([]search.Node, 0, len(features))
	for _, f := range features {
		weights = append(weights, f.Weight)
		nodes = append(nodes, e.titleNode(e.graph.Title(f.Article)))
	}
	return search.Weight(weights, nodes)
}

// BuildQuery assembles the expanded query of Section 2.3: a three-part
// weighted combination of (i) the user's raw query, (ii) the query-node
// titles and (iii) the expansion-feature titles. Parts that are empty
// (no entities, no features) drop out with their weight renormalised by
// the #weight semantics.
func (e *Expander) BuildQuery(userQuery string, qg QueryGraph) search.Node {
	w := e.Weights.normalized()
	return search.Weight(
		[]float64{w.Query, w.Entities, w.Expansion},
		[]search.Node{
			search.BagOfWords(e.analyzer, userQuery),
			e.entityPart(qg.QueryNodes),
			e.expansionPart(qg.Features),
		},
	)
}

// Baseline query builders (Section 4's QL_Q, QL_E, QL_Q&E and Q_X).

// QLQuery is the non-expanded user query (QL_Q).
func (e *Expander) QLQuery(userQuery string) search.Node {
	return search.BagOfWords(e.analyzer, userQuery)
}

// QLEntities queries with the query-node titles only (QL_E).
func (e *Expander) QLEntities(queryNodes []kb.NodeID) search.Node {
	return e.entityPart(queryNodes)
}

// QLQueryEntities combines the user query and the query-node titles with
// equal weight (QL_Q&E).
func (e *Expander) QLQueryEntities(userQuery string, queryNodes []kb.NodeID) search.Node {
	return search.Weight(
		[]float64{1, 1},
		[]search.Node{search.BagOfWords(e.analyzer, userQuery), e.entityPart(queryNodes)},
	)
}

// QLExpansionOnly queries with the expansion features alone (Q_X) — the
// configuration the paper shows is *not* useful in isolation.
func (e *Expander) QLExpansionOnly(qg QueryGraph) search.Node {
	return e.expansionPart(qg.Features)
}

// Segment describes one slice of an SQE_C combination: take results from
// Run until the combined list reaches Upto entries (Upto <= 0 means "the
// rest").
type Segment struct {
	Run  []string
	Upto int
}

// Splice implements the SQE_C combination (Section 2.2.1): result lists
// from differently-configured expansions are concatenated range-wise —
// the paper uses ranks 1–5 from SQE_T, 6–200 from SQE_T&S and 201+ from
// SQE_S. Duplicates are kept only at their first occurrence; segments
// are consumed in order and each contributes documents (skipping ones
// already taken) until the output reaches its Upto bound.
func Splice(limit int, segments ...Segment) []string {
	out := make([]string, 0, limit)
	seen := make(map[string]bool, limit)
	for _, seg := range segments {
		upto := seg.Upto
		if upto <= 0 || upto > limit {
			upto = limit
		}
		for _, doc := range seg.Run {
			if len(out) >= upto {
				break
			}
			if seen[doc] {
				continue
			}
			seen[doc] = true
			out = append(out, doc)
		}
		if len(out) >= limit {
			break
		}
	}
	return out
}

// DefaultSpliceCuts are the paper's SQE_C cut points: first 5 results
// from SQE_T, through rank 200 from SQE_T&S, remainder from SQE_S.
var DefaultSpliceCuts = [2]int{5, 200}

// SpliceC applies the paper's SQE_C configuration to three ranked lists.
func SpliceC(limit int, runT, runTS, runS []string) []string {
	return Splice(limit,
		Segment{Run: runT, Upto: DefaultSpliceCuts[0]},
		Segment{Run: runTS, Upto: DefaultSpliceCuts[1]},
		Segment{Run: runS},
	)
}

// ResultNames extracts the document names from a ranked result list.
func ResultNames(results []search.Result) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Name
	}
	return out
}

// SpliceResultsC applies the SQE_C combination to three ranked Result
// lists and materialises the combined list with scores attached.
//
// Tie rule: when the same document name appears in more than one run —
// necessarily with different scores, since the three expansions build
// different queries — the Result (doc, score) of the *first* run in
// T → T&S → S order wins, regardless of which segment the name was
// spliced from. The rule is deterministic and order-independent of the
// evaluation schedule, which is what lets the parallel SQE_C path return
// byte-identical output to the sequential one. Every spliced name is
// guaranteed present in the map (names come from the runs themselves),
// so no result is ever dropped.
func SpliceResultsC(limit int, runT, runTS, runS []search.Result) []search.Result {
	names := SpliceC(limit, ResultNames(runT), ResultNames(runTS), ResultNames(runS))
	byName := make(map[string]search.Result, len(runT)+len(runTS)+len(runS))
	for _, rs := range [][]search.Result{runT, runTS, runS} {
		for _, r := range rs {
			if _, ok := byName[r.Name]; !ok {
				byName[r.Name] = r
			}
		}
	}
	out := make([]search.Result, 0, len(names))
	for _, n := range names {
		out = append(out, byName[n])
	}
	return out
}

// DescribeGraph renders a query graph for debugging and the CLI: query
// node titles plus the top expansion features with weights.
func (e *Expander) DescribeGraph(qg QueryGraph, maxFeatures int) string {
	names := make([]string, len(qg.QueryNodes))
	for i, q := range qg.QueryNodes {
		names[i] = e.graph.Title(q)
	}
	s := fmt.Sprintf("query nodes: %v; %d expansion features", names, len(qg.Features))
	feats := qg.Features
	if maxFeatures > 0 && len(feats) > maxFeatures {
		feats = feats[:maxFeatures]
	}
	if len(feats) > 0 {
		s += ":"
		for _, f := range feats {
			s += fmt.Sprintf(" %q(%.0f)", e.graph.Title(f.Article), f.Weight)
		}
	}
	return s
}

// SortFeatures orders features by descending weight then ascending
// article ID (the canonical order produced by BuildQueryGraph); exposed
// for callers that assemble graphs manually.
func SortFeatures(features []Feature) {
	sort.Slice(features, func(i, j int) bool {
		if features[i].Weight != features[j].Weight {
			return features[i].Weight > features[j].Weight
		}
		return features[i].Article < features[j].Article
	})
}

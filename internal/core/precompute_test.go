package core

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/kb"
	"repro/internal/motif"
)

var storeTestSets = []motif.Set{motif.SetT, motif.SetS, motif.SetTS}

// storeTestEntries precomputes entries for every motif set over the
// cache-test KB: the motif-bearing node alone, a two-node set, and a
// node with an empty expansion.
func storeTestEntries(t *testing.T) (*Expander, map[string]QueryGraph, [][]kb.NodeID) {
	t.Helper()
	e, nodes := cacheTestExpander(t)
	entitySets := [][]kb.NodeID{
		nodes,
		{nodes[0], 1},
		{2}, // a category node: expansion is empty but still stored
	}
	return e, PrecomputeEntries(e, entitySets, storeTestSets), entitySets
}

// TestStoreRoundTrip is the tentpole acceptance check at the store
// layer: write → read → Lookup must hand back graphs byte-identical
// (DeepEqual over scores, ordering, feature lists) to a fresh
// BuildQueryGraph, for every entity set × motif set, including the
// empty expansion.
func TestStoreRoundTrip(t *testing.T) {
	e, entries, entitySets := storeTestEntries(t)
	const kbHash uint64 = 0xdeadbeefcafef00d

	var buf bytes.Buffer
	if err := WriteStore(&buf, kbHash, entries); err != nil {
		t.Fatal(err)
	}
	st, err := ReadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.KBHash() != kbHash {
		t.Errorf("KBHash = %#x, want %#x", st.KBHash(), kbHash)
	}
	if st.Len() != len(entries) {
		t.Errorf("Len = %d, want %d", st.Len(), len(entries))
	}
	for _, nodes := range entitySets {
		for _, set := range storeTestSets {
			fresh := e.BuildQueryGraph(nodes, set)
			stored := e.BuildQueryGraphStored(nodes, set, nil, st)
			if !reflect.DeepEqual(fresh, stored) {
				t.Errorf("nodes %v set %v: stored %+v differs from fresh %+v", nodes, set, stored, fresh)
			}
		}
	}
	wantHits := int64(len(entitySets) * len(storeTestSets))
	if s := st.Stats(); s.Hits != wantHits || s.Misses != 0 {
		t.Errorf("stats = %+v, want %d hits / 0 misses", s, wantHits)
	}

	// The writer is deterministic: same entries, same bytes.
	var buf2 bytes.Buffer
	if err := WriteStore(&buf2, kbHash, entries); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two writes of the same entries produced different bytes")
	}
}

// TestStoreRebindsCallerNodeOrder: a store hit must return the caller's
// exact node permutation (entries are stored canonically sorted), so a
// store-served request is byte-identical to a live one for any
// permutation.
func TestStoreRebindsCallerNodeOrder(t *testing.T) {
	e, entries, _ := storeTestEntries(t)
	var buf bytes.Buffer
	if err := WriteStore(&buf, 1, entries); err != nil {
		t.Fatal(err)
	}
	st, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	perm := []kb.NodeID{1, 0} // reversed relative to canonical order
	fresh := e.BuildQueryGraph(perm, motif.SetTS)
	stored := e.BuildQueryGraphStored(perm, motif.SetTS, nil, st)
	if !reflect.DeepEqual(fresh, stored) {
		t.Errorf("permuted store hit %+v differs from fresh build %+v", stored, fresh)
	}
	if s := st.Stats(); s.Hits != 1 {
		t.Errorf("permutation should hit the canonical entry: %+v", s)
	}
}

// TestStoreLookupChain pins the tier order of BuildQueryGraphStored:
// LRU cache first, then the store, then a live build that populates
// the cache (and only the cache).
func TestStoreLookupChain(t *testing.T) {
	e, entries, _ := storeTestEntries(t)
	var buf bytes.Buffer
	if err := WriteStore(&buf, 1, entries); err != nil {
		t.Fatal(err)
	}
	st, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := NewExpansionCache(64)
	nodes := []kb.NodeID{0}

	// First build: cache misses, store hits; nothing copied to cache.
	e.BuildQueryGraphStored(nodes, motif.SetTS, c, st)
	if s := st.Stats(); s.Hits != 1 {
		t.Fatalf("store should serve the first request: %+v", s)
	}
	if cs := c.Stats(); cs.Misses != 1 || cs.Entries != 0 {
		t.Fatalf("store hits must not populate the cache: %+v", cs)
	}

	// A key absent from the store builds live and lands in the cache...
	e.MaxFeatures = 1 // changes the key; the store was built without it
	e.BuildQueryGraphStored(nodes, motif.SetTS, c, st)
	if s := st.Stats(); s.Misses != 1 {
		t.Fatalf("reconfigured expander must miss the store: %+v", s)
	}
	if cs := c.Stats(); cs.Entries != 1 {
		t.Fatalf("live build should populate the cache: %+v", cs)
	}
	// ...and the cache, not the store, serves it from then on.
	e.BuildQueryGraphStored(nodes, motif.SetTS, c, st)
	if cs, s := c.Stats(), st.Stats(); cs.Hits != 1 || s.Misses != 1 {
		t.Fatalf("cache should serve ahead of the store: cache %+v store %+v", cs, s)
	}
}

// TestStoreCorruptionRobust mirrors kb.TestDecodeCorruptionRobust:
// flipped or truncated store bytes must fail cleanly — the reader may
// return an error (the expected outcome given per-record checksums) but
// must never panic or serve a half-read store.
func TestStoreCorruptionRobust(t *testing.T) {
	_, entries, _ := storeTestEntries(t)
	var buf bytes.Buffer
	if err := WriteStore(&buf, 42, entries); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		data := append([]byte(nil), valid...)
		switch trial % 3 {
		case 0: // flip a byte
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		case 1: // truncate
			data = data[:rng.Intn(len(data))]
		case 2: // flip several bytes
			for i := 0; i < 4; i++ {
				data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: reader panicked: %v", trial, r)
				}
			}()
			st, err := ReadStore(bytes.NewReader(data))
			// A flip confined to the 8-byte KB hash yields a valid store
			// with a different hash; anything else must error. Either
			// way a non-nil store must be fully populated.
			if err == nil && st.Len() != len(entries) {
				t.Fatalf("trial %d: corrupted store read back %d of %d entries without error", trial, st.Len(), len(entries))
			}
		}()
	}
}

// TestStoreRejectsTrailingBytes: the record count is authoritative and
// appended garbage is an error, not silently ignored.
func TestStoreRejectsTrailingBytes(t *testing.T) {
	_, entries, _ := storeTestEntries(t)
	var buf bytes.Buffer
	if err := WriteStore(&buf, 1, entries); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0)
	if _, err := ReadStore(&buf); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestStoreRejectsBadMagic: a file in some other format (here: a KB
// graph header) is rejected up front.
func TestStoreRejectsBadMagic(t *testing.T) {
	if _, err := ReadStore(bytes.NewReader([]byte("SQEKB\x01garbage"))); err == nil {
		t.Fatal("foreign magic accepted")
	}
}

// TestStoreFileRoundTripAndOpenErrors covers the file-level API:
// WriteStoreFile → OpenStoreFile round-trips, a missing path errors,
// and a bit-flipped file on disk is rejected at open.
func TestStoreFileRoundTripAndOpenErrors(t *testing.T) {
	_, entries, _ := storeTestEntries(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "expansions.store")
	if err := WriteStoreFile(path, 7, entries); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.KBHash() != 7 || st.Len() != len(entries) {
		t.Errorf("reopened store: hash %#x len %d, want 7 / %d", st.KBHash(), st.Len(), len(entries))
	}
	// No temp files left behind by the atomic write.
	matches, _ := filepath.Glob(filepath.Join(dir, ".sqe-store-*"))
	if len(matches) != 0 {
		t.Errorf("atomic write left temp files: %v", matches)
	}

	if _, err := OpenStoreFile(filepath.Join(dir, "missing.store")); err == nil {
		t.Error("missing file accepted")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff // inside the last record's checksum
	bad := filepath.Join(dir, "bad.store")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStoreFile(bad); err == nil {
		t.Error("bit-flipped file accepted")
	}
}

// TestPrecomputeEntriesFoldsDuplicates: duplicate entity sets (and
// permutations of one set) share a single entry, and empty expansions
// are stored rather than skipped.
func TestPrecomputeEntriesFoldsDuplicates(t *testing.T) {
	e, nodes := cacheTestExpander(t)
	entries := PrecomputeEntries(e, [][]kb.NodeID{
		{nodes[0], 1},
		{1, nodes[0]}, // permutation: same canonical key
		{2},           // empty expansion
	}, []motif.Set{motif.SetTS})
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2 (permutations fold)", len(entries))
	}
	empty, ok := entries[e.ExpansionKey([]kb.NodeID{2}, motif.SetTS)]
	if !ok {
		t.Fatal("empty expansion not stored")
	}
	if len(empty.Features) != 0 {
		t.Fatalf("expected empty feature list, got %+v", empty.Features)
	}
}

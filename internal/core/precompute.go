package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/kb"
	"repro/internal/motif"
)

// PrecomputedStore is the offline entity→expansion store of DESIGN.md
// §5h: motif expansion depends only on the KB, never on the query text
// ("Massive Query Expansion by Exploiting Graph Knowledge Bases"), so
// expansions can be built once offline (cmd/sqe-precompute) and served
// as a hash lookup. Entries are keyed by the complete ExpansionKey —
// sorted entity set, motif set, and every expander/matcher knob — so a
// store can never hand a server a graph built under a different
// configuration: a config mismatch changes the key and simply misses.
//
// The store is immutable after open and safe for concurrent lookups;
// the hit/miss counters are atomic.
//
// On-disk format ("SQEPX\x01"):
//
//	magic "SQEPX\x01"
//	8 bytes LE: KB content hash (kb.ContentHash of the graph the
//	            expansions were built over)
//	uvarint record count
//	per record:
//	    uvarint len(key),     key bytes
//	    uvarint len(payload), payload bytes
//	    4 bytes LE: IEEE CRC32 over key ‖ payload
//	EOF (trailing bytes are an error)
//
// payload encodes one canonical QueryGraph:
//
//	uvarint node count, delta-uvarint node IDs (sorted ascending,
//	duplicates kept — see ExpansionKey)
//	uvarint feature count, per feature: uvarint article ID,
//	8 bytes LE float64 bits of the weight (bit-exact round-trip)
//
// Records are written in sorted key order, so the same entries always
// produce byte-identical files — which is what lets sqe-precompute's
// incremental rebuild compare content hashes instead of bytes. Every
// length prefix is bounds-checked before allocation and every record
// checksummed, mirroring the corruption discipline of internal/index's
// decoder and internal/kb/io.go: a truncated or bit-flipped store file
// fails to open cleanly, it never serves garbage.
type PrecomputedStore struct {
	kbHash  uint64
	entries map[string]QueryGraph

	hits   atomic.Int64
	misses atomic.Int64
}

var storeMagic = []byte("SQEPX\x01")

// Allocation and sanity caps for length prefixes read from untrusted
// store bytes (cf. internal/index's maxPrealloc).
const (
	storeMaxRecords = 1 << 24
	storeMaxKeyLen  = 1 << 16
	storeMaxPayload = 1 << 24
)

// StoreStats are the store's monotonic lookup counters plus its size.
// Stale is set by consumers (the Engine) that were handed a store whose
// KB hash did not match the serving KB and therefore dropped it; the
// store itself never reports stale.
type StoreStats struct {
	Hits    int64
	Misses  int64
	Entries int64
	Stale   bool
}

// KBHash returns the content hash of the KB graph the store was built
// over (see kb.ContentHash).
func (s *PrecomputedStore) KBHash() uint64 { return s.kbHash }

// Len returns the number of precomputed entries.
func (s *PrecomputedStore) Len() int { return len(s.entries) }

// Stats snapshots the lookup counters.
func (s *PrecomputedStore) Stats() StoreStats {
	return StoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Entries: int64(len(s.entries)),
	}
}

// Lookup returns the precomputed canonical graph for key. Like the
// expansion cache, an injected cache fault degrades the lookup to a
// miss — a failing store backend slows requests down (they rebuild the
// expansion live), it never fails them.
func (s *PrecomputedStore) Lookup(key string) (QueryGraph, bool) {
	if fault.Check(fault.ExpansionCache) != nil {
		return QueryGraph{}, false
	}
	qg, ok := s.entries[key]
	if !ok {
		s.misses.Add(1)
		return QueryGraph{}, false
	}
	s.hits.Add(1)
	return qg, true
}

// Range iterates the store's entries (in unspecified order), stopping
// early when fn returns false. The graphs are the store's canonical
// copies — treat them as immutable.
func (s *PrecomputedStore) Range(fn func(key string, qg QueryGraph) bool) {
	for k, qg := range s.entries {
		if !fn(k, qg) {
			return
		}
	}
}

// PrecomputeEntries materialises store entries for the cross product of
// entitySets × motif sets under e's configuration: each entry is keyed
// by the complete ExpansionKey and holds the canonical form of a fresh
// BuildQueryGraph. Duplicate entity sets fold into one entry. Empty
// expansions are stored too — a hit on an empty graph still saves the
// motif search that would rediscover its emptiness.
func PrecomputeEntries(e *Expander, entitySets [][]kb.NodeID, sets []motif.Set) map[string]QueryGraph {
	out := make(map[string]QueryGraph, len(entitySets)*len(sets))
	for _, nodes := range entitySets {
		for _, set := range sets {
			key := e.ExpansionKey(nodes, set)
			if _, ok := out[key]; ok {
				continue
			}
			out[key] = canonicalGraph(e.BuildQueryGraph(nodes, set))
		}
	}
	return out
}

// WriteStore writes entries to w in the store format, in sorted key
// order (deterministic bytes for identical content).
func WriteStore(w io.Writer, kbHash uint64, entries map[string]QueryGraph) error {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(storeMagic); err != nil {
		return err
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], kbHash)
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	var vbuf [binary.MaxVarintLen64]byte
	writeUvarint := func(x uint64) error {
		n := binary.PutUvarint(vbuf[:], x)
		_, err := bw.Write(vbuf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if len(k) > storeMaxKeyLen {
			return fmt.Errorf("core: store key length %d exceeds limit %d", len(k), storeMaxKeyLen)
		}
		payload := appendGraphPayload(nil, entries[k])
		if len(payload) > storeMaxPayload {
			return fmt.Errorf("core: store payload length %d exceeds limit %d", len(payload), storeMaxPayload)
		}
		if err := writeUvarint(uint64(len(k))); err != nil {
			return err
		}
		if _, err := bw.WriteString(k); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(payload))); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
		crc := crc32.NewIEEE()
		crc.Write([]byte(k))
		crc.Write(payload)
		var c [4]byte
		binary.LittleEndian.PutUint32(c[:], crc.Sum32())
		if _, err := bw.Write(c[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteStoreFile writes the store to path atomically: a temp file in
// the same directory, fsync'd, then renamed over path — a crashed or
// interrupted build never leaves a half-written store where a server
// would find it.
func WriteStoreFile(path string, kbHash uint64, entries map[string]QueryGraph) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".sqe-store-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteStore(tmp, kbHash, entries); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// OpenStoreFile opens and fully validates a store file.
func OpenStoreFile(path string) (*PrecomputedStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := ReadStore(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}

// ReadStore reads a store previously written by WriteStore, validating
// magic, every length prefix and every record checksum. Any truncation
// or corruption is an error — the store is all-or-nothing.
func ReadStore(r io.Reader) (*PrecomputedStore, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("core: store magic: %w", err)
	}
	if string(head) != string(storeMagic) {
		return nil, fmt.Errorf("core: bad store magic %q", head)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, fmt.Errorf("core: store KB hash: %w", err)
	}
	st := &PrecomputedStore{kbHash: binary.LittleEndian.Uint64(u64[:])}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("core: store record count: %w", err)
	}
	if count > storeMaxRecords {
		return nil, fmt.Errorf("core: store record count %d exceeds limit %d", count, storeMaxRecords)
	}
	st.entries = make(map[string]QueryGraph, prestoreAlloc(count))
	for i := uint64(0); i < count; i++ {
		keyLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: store record %d key length: %w", i, err)
		}
		if keyLen > storeMaxKeyLen {
			return nil, fmt.Errorf("core: store record %d: key length %d exceeds limit %d", i, keyLen, storeMaxKeyLen)
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(br, key); err != nil {
			return nil, fmt.Errorf("core: store record %d key: %w", i, err)
		}
		payloadLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("core: store record %d payload length: %w", i, err)
		}
		if payloadLen > storeMaxPayload {
			return nil, fmt.Errorf("core: store record %d: payload length %d exceeds limit %d", i, payloadLen, storeMaxPayload)
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("core: store record %d payload: %w", i, err)
		}
		var c [4]byte
		if _, err := io.ReadFull(br, c[:]); err != nil {
			return nil, fmt.Errorf("core: store record %d checksum: %w", i, err)
		}
		crc := crc32.NewIEEE()
		crc.Write(key)
		crc.Write(payload)
		if got, want := crc.Sum32(), binary.LittleEndian.Uint32(c[:]); got != want {
			return nil, fmt.Errorf("core: store record %d: checksum mismatch (got %08x, want %08x)", i, got, want)
		}
		qg, err := decodeGraphPayload(payload)
		if err != nil {
			return nil, fmt.Errorf("core: store record %d: %w", i, err)
		}
		k := string(key)
		if _, dup := st.entries[k]; dup {
			return nil, fmt.Errorf("core: store record %d: duplicate key", i)
		}
		st.entries[k] = qg
	}
	// The record count is authoritative; trailing bytes mean the file
	// was not produced by WriteStore (or was corrupted in a way the
	// per-record checks cannot see).
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("core: store has trailing bytes after %d records", count)
	}
	return st, nil
}

// prestoreAlloc caps the map's initial size hint against hostile counts
// (the map still grows to the real size as records arrive).
func prestoreAlloc(n uint64) int {
	const limit = 1 << 16
	if n > limit {
		return limit
	}
	return int(n)
}

// appendGraphPayload encodes qg (which must be canonical: sorted query
// nodes) into the store's payload form.
func appendGraphPayload(buf []byte, qg QueryGraph) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(qg.QueryNodes)))
	prev := kb.NodeID(0)
	for i, n := range qg.QueryNodes {
		d := uint64(n)
		if i > 0 {
			d = uint64(n - prev) // sorted ascending, duplicates give delta 0
		}
		buf = binary.AppendUvarint(buf, d)
		prev = n
	}
	buf = binary.AppendUvarint(buf, uint64(len(qg.Features)))
	for _, f := range qg.Features {
		buf = binary.AppendUvarint(buf, uint64(f.Article))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f.Weight))
	}
	return buf
}

// decodeGraphPayload is the strict inverse of appendGraphPayload: it
// must consume the payload exactly and rejects counts the remaining
// bytes cannot possibly satisfy before allocating for them.
func decodeGraphPayload(payload []byte) (QueryGraph, error) {
	var qg QueryGraph
	rest := payload
	readUvarint := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("payload truncated at %s", what)
		}
		rest = rest[n:]
		return v, nil
	}
	numNodes, err := readUvarint("node count")
	if err != nil {
		return qg, err
	}
	// Every node takes at least one byte.
	if numNodes > uint64(len(rest)) {
		return qg, fmt.Errorf("payload claims %d nodes in %d bytes", numNodes, len(rest))
	}
	if numNodes > 0 {
		qg.QueryNodes = make([]kb.NodeID, 0, numNodes)
		prev := kb.NodeID(0)
		for i := uint64(0); i < numNodes; i++ {
			d, err := readUvarint("node")
			if err != nil {
				return qg, err
			}
			n := kb.NodeID(d)
			if i > 0 {
				n = prev + kb.NodeID(d)
			}
			if n < 0 {
				return qg, fmt.Errorf("node %d out of range", n)
			}
			qg.QueryNodes = append(qg.QueryNodes, n)
			prev = n
		}
	}
	numFeatures, err := readUvarint("feature count")
	if err != nil {
		return qg, err
	}
	// Every feature takes at least 9 bytes (1 varint + 8 weight).
	if numFeatures > uint64(len(rest))/9 {
		return qg, fmt.Errorf("payload claims %d features in %d bytes", numFeatures, len(rest))
	}
	if numFeatures > 0 {
		qg.Features = make([]Feature, 0, numFeatures)
		for i := uint64(0); i < numFeatures; i++ {
			a, err := readUvarint("feature article")
			if err != nil {
				return qg, err
			}
			if a > uint64(math.MaxInt32) {
				return qg, fmt.Errorf("feature article %d out of range", a)
			}
			if len(rest) < 8 {
				return qg, fmt.Errorf("payload truncated at feature weight")
			}
			w := math.Float64frombits(binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
			qg.Features = append(qg.Features, Feature{Article: kb.NodeID(a), Weight: w})
		}
	}
	if len(rest) != 0 {
		return qg, fmt.Errorf("payload has %d trailing bytes", len(rest))
	}
	return qg, nil
}

// BuildQueryGraphStored is the full lookup chain behind serving-time
// expansion: sharded LRU cache, then the precomputed store, then a live
// BuildQueryGraph (which populates the cache). Either tier may be nil.
// All three paths return byte-identical graphs for the caller's exact
// node order — cache and store both hold canonical graphs and hits
// rebind the caller's query-node permutation, exactly as
// BuildQueryGraphCached always has.
//
// A store hit is NOT copied into the LRU cache: the store lookup is
// already O(1) on an immutable map, so promoting it would only
// duplicate memory and evict entries the store cannot serve.
func (e *Expander) BuildQueryGraphStored(queryNodes []kb.NodeID, set motif.Set, c *ExpansionCache, st *PrecomputedStore) QueryGraph {
	if c == nil && st == nil {
		return e.BuildQueryGraph(queryNodes, set)
	}
	key := e.ExpansionKey(queryNodes, set)
	if c != nil {
		if qg, ok := c.Get(key); ok {
			return rebindQueryNodes(qg, queryNodes)
		}
	}
	if st != nil {
		if qg, ok := st.Lookup(key); ok {
			return rebindQueryNodes(qg, queryNodes)
		}
	}
	qg := e.BuildQueryGraph(queryNodes, set)
	if c != nil {
		c.Put(key, canonicalGraph(qg))
	}
	return qg
}

// BuildQueryGraphStoredStats is BuildQueryGraphStored with the motif
// stage timed and the feature count recorded into ps (which may be
// nil); lookup hits account their (tiny) cost to the motif stage, so
// stage percentages stay truthful under caching and precomputation.
func (e *Expander) BuildQueryGraphStoredStats(queryNodes []kb.NodeID, set motif.Set, c *ExpansionCache, st *PrecomputedStore, ps *PipelineStats) QueryGraph {
	if c == nil && st == nil {
		return e.BuildQueryGraphStats(queryNodes, set, ps)
	}
	start := time.Now()
	qg := e.BuildQueryGraphStored(queryNodes, set, c, st)
	if ps != nil {
		ps.Stages.MotifSearch += time.Since(start)
		ps.Features += len(qg.Features)
	}
	return qg
}

// rebindQueryNodes returns the canonical stored graph bound to the
// caller's own query-node order (which fixes the entity part's child
// order and therefore the floating-point summation order downstream).
func rebindQueryNodes(qg QueryGraph, queryNodes []kb.NodeID) QueryGraph {
	return QueryGraph{
		QueryNodes: append([]kb.NodeID(nil), queryNodes...),
		Features:   qg.Features,
	}
}

package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/kb"
	"repro/internal/motif"
	"repro/internal/search"
)

// cacheTestExpander builds a tiny KB with one triangular motif so
// expansions are non-empty.
func cacheTestExpander(t *testing.T) (*Expander, []kb.NodeID) {
	t.Helper()
	b := kb.NewBuilder(8)
	must := func(id kb.NodeID, err error) kb.NodeID {
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := must(b.AddArticle("Cable car"))
	f := must(b.AddArticle("Funicular"))
	c := must(b.AddCategory("Category:Cable railways"))
	for _, err := range []error{
		b.AddMembership(a, c), b.AddMembership(f, c),
		b.AddLink(a, f), b.AddLink(f, a),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	return NewExpander(g, analysis.Standard()), []kb.NodeID{a}
}

func TestExpansionCacheHitIsBitIdentical(t *testing.T) {
	e, nodes := cacheTestExpander(t)
	c := NewExpansionCache(64)
	miss := e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	hit := e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	if !reflect.DeepEqual(miss, hit) {
		t.Fatalf("cache hit differs from miss: %+v vs %+v", miss, hit)
	}
	uncached := e.BuildQueryGraph(nodes, motif.SetTS)
	if !reflect.DeepEqual(uncached, hit) {
		t.Fatalf("cached graph differs from uncached build: %+v vs %+v", uncached, hit)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestExpansionCacheKeySeparatesSetsAndKnobs(t *testing.T) {
	e, nodes := cacheTestExpander(t)
	c := NewExpansionCache(64)
	e.BuildQueryGraphCached(nodes, motif.SetT, c)
	e.BuildQueryGraphCached(nodes, motif.SetS, c)
	e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	if st := c.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Errorf("motif sets should not share entries: %+v", st)
	}
	e.MaxFeatures = 1
	e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	e.UniformFeatureWeights = true
	e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	if st := c.Stats(); st.Misses != 5 {
		t.Errorf("expander knobs should change the key: %+v", st)
	}
}

func TestExpansionCachePermutationsShareEntry(t *testing.T) {
	e, _ := cacheTestExpander(t)
	nodes := []kb.NodeID{1, 0}
	key1 := e.expansionKey(nodes, motif.SetTS)
	key2 := e.expansionKey([]kb.NodeID{0, 1}, motif.SetTS)
	if key1 != key2 {
		t.Errorf("permuted node sets should share a key: %q vs %q", key1, key2)
	}
	// Key construction must not reorder the caller's slice.
	if nodes[0] != 1 || nodes[1] != 0 {
		t.Errorf("expansionKey mutated its input: %v", nodes)
	}
}

// TestExpansionCachePermutedHitMatchesColdMiss is the regression test
// for the canonical-storage guarantee: permutations of one entity set
// share a cache entry, yet each permutation's hit must be byte-identical
// to the cold (uncached) build for that same permutation — the hit
// rebinds the caller's query-node order while sharing the canonical
// features.
func TestExpansionCachePermutedHitMatchesColdMiss(t *testing.T) {
	b := kb.NewBuilder(8)
	must := func(id kb.NodeID, err error) kb.NodeID {
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := must(b.AddArticle("Cable car"))
	f := must(b.AddArticle("Funicular"))
	g := must(b.AddArticle("Gondola lift"))
	c := must(b.AddCategory("Category:Cable railways"))
	for _, err := range []error{
		b.AddMembership(a, c), b.AddMembership(f, c), b.AddMembership(g, c),
		b.AddLink(a, g), b.AddLink(g, a),
		b.AddLink(f, g), b.AddLink(g, f),
		b.AddLink(a, f), b.AddLink(f, a),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	e := NewExpander(b.Build(), analysis.Standard())
	perm1 := []kb.NodeID{a, f}
	perm2 := []kb.NodeID{f, a}
	cold1 := e.BuildQueryGraph(perm1, motif.SetTS)
	cold2 := e.BuildQueryGraph(perm2, motif.SetTS)
	if len(cold1.Features) == 0 {
		t.Fatal("fixture produced no expansion features")
	}
	cache := NewExpansionCache(16)
	miss := e.BuildQueryGraphCached(perm1, motif.SetTS, cache)
	hit := e.BuildQueryGraphCached(perm2, motif.SetTS, cache)
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("permutations should share one entry: %+v", st)
	}
	if !reflect.DeepEqual(miss, cold1) {
		t.Fatalf("miss differs from cold build: %+v vs %+v", miss, cold1)
	}
	if !reflect.DeepEqual(hit, cold2) {
		t.Fatalf("permuted hit differs from its own cold build: %+v vs %+v", hit, cold2)
	}
	if !reflect.DeepEqual(hit.Features, miss.Features) {
		t.Fatalf("features diverge across permutations: %+v vs %+v", hit.Features, miss.Features)
	}
}

// TestCanonicalGraph pins the storage form: unsorted nodes and features
// come back sorted without mutating the input graph's slices.
func TestCanonicalGraph(t *testing.T) {
	in := QueryGraph{
		QueryNodes: []kb.NodeID{3, 1, 2},
		Features: []Feature{
			{Article: 5, Weight: 1},
			{Article: 9, Weight: 4},
			{Article: 4, Weight: 4},
		},
	}
	got := canonicalGraph(in)
	if want := []kb.NodeID{1, 2, 3}; !reflect.DeepEqual(got.QueryNodes, want) {
		t.Fatalf("QueryNodes = %v, want %v", got.QueryNodes, want)
	}
	wantF := []Feature{{Article: 4, Weight: 4}, {Article: 9, Weight: 4}, {Article: 5, Weight: 1}}
	if !reflect.DeepEqual(got.Features, wantF) {
		t.Fatalf("Features = %+v, want %+v", got.Features, wantF)
	}
	if in.QueryNodes[0] != 3 || in.Features[0].Article != 5 {
		t.Fatalf("canonicalGraph mutated its input: %+v", in)
	}
	// An already-canonical graph passes through with its slices shared.
	again := canonicalGraph(got)
	if &again.QueryNodes[0] != &got.QueryNodes[0] || &again.Features[0] != &got.Features[0] {
		t.Fatal("canonical input should not be copied")
	}
}

func TestExpansionCacheEvictionBounded(t *testing.T) {
	c := NewExpansionCache(32)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("key-%d", i), QueryGraph{})
	}
	if n := c.Len(); n > 32 {
		t.Errorf("cache grew to %d entries, capacity 32", n)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions after overfilling")
	}
	if st.Entries != int64(c.Len()) {
		t.Errorf("Stats.Entries %d != Len %d", st.Entries, c.Len())
	}
}

func TestExpansionCacheLRUOrder(t *testing.T) {
	// A single shard (capacity rounds up to 1 per shard); use keys that
	// land in the same shard by brute force: with capacity 16 each shard
	// holds one entry, so instead test recency within one shard directly.
	c := NewExpansionCache(cacheShards * 2) // 2 per shard
	s := c.shard("x")
	var same []string
	for i := 0; len(same) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == s {
			same = append(same, k)
		}
	}
	c.Put(same[0], QueryGraph{})
	c.Put(same[1], QueryGraph{})
	c.Get(same[0]) // promote: same[1] is now LRU
	c.Put(same[2], QueryGraph{})
	if _, ok := c.Get(same[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(same[0]); !ok {
		t.Error("recently used entry was evicted")
	}
}

func TestExpansionCacheConcurrent(t *testing.T) {
	e, nodes := cacheTestExpander(t)
	c := NewExpansionCache(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				set := []motif.Set{motif.SetT, motif.SetTS, motif.SetS}[i%3]
				qg := e.BuildQueryGraphCached(nodes, set, c)
				if len(qg.QueryNodes) != len(nodes) {
					t.Errorf("worker %d: bad graph %+v", w, qg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("lookups %d != 1600", st.Hits+st.Misses)
	}
}

func TestSpliceResultsCFirstRunWins(t *testing.T) {
	res := func(name string, score float64) search.Result {
		return search.Result{Name: name, Score: score}
	}
	runT := []search.Result{res("a", 3), res("b", 2)}
	runTS := []search.Result{res("b", 9), res("c", 8), res("d", 7)}
	runS := []search.Result{res("d", 5), res("e", 4)}
	out := SpliceResultsC(10, runT, runTS, runS)
	want := map[string]float64{
		"a": 3, // only in T
		"b": 2, // T and TS collide → T's score wins
		"c": 8, // only in TS
		"d": 7, // TS and S collide → TS's score wins
		"e": 4, // only in S
	}
	if len(out) != len(want) {
		t.Fatalf("got %d results, want %d: %+v", len(out), len(want), out)
	}
	for _, r := range out {
		if want[r.Name] != r.Score {
			t.Errorf("%s: score %v, want %v (first-run-wins)", r.Name, r.Score, want[r.Name])
		}
	}
	// Order must follow the splice of the names.
	names := SpliceC(10, ResultNames(runT), ResultNames(runTS), ResultNames(runS))
	for i, r := range out {
		if names[i] != r.Name {
			t.Errorf("rank %d: %s, want %s", i, r.Name, names[i])
		}
	}
}

package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/kb"
	"repro/internal/motif"
	"repro/internal/search"
)

// cacheTestExpander builds a tiny KB with one triangular motif so
// expansions are non-empty.
func cacheTestExpander(t *testing.T) (*Expander, []kb.NodeID) {
	t.Helper()
	b := kb.NewBuilder(8)
	must := func(id kb.NodeID, err error) kb.NodeID {
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := must(b.AddArticle("Cable car"))
	f := must(b.AddArticle("Funicular"))
	c := must(b.AddCategory("Category:Cable railways"))
	for _, err := range []error{
		b.AddMembership(a, c), b.AddMembership(f, c),
		b.AddLink(a, f), b.AddLink(f, a),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	return NewExpander(g, analysis.Standard()), []kb.NodeID{a}
}

func TestExpansionCacheHitIsBitIdentical(t *testing.T) {
	e, nodes := cacheTestExpander(t)
	c := NewExpansionCache(64)
	miss := e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	hit := e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	if !reflect.DeepEqual(miss, hit) {
		t.Fatalf("cache hit differs from miss: %+v vs %+v", miss, hit)
	}
	uncached := e.BuildQueryGraph(nodes, motif.SetTS)
	if !reflect.DeepEqual(uncached, hit) {
		t.Fatalf("cached graph differs from uncached build: %+v vs %+v", uncached, hit)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestExpansionCacheKeySeparatesSetsAndKnobs(t *testing.T) {
	e, nodes := cacheTestExpander(t)
	c := NewExpansionCache(64)
	e.BuildQueryGraphCached(nodes, motif.SetT, c)
	e.BuildQueryGraphCached(nodes, motif.SetS, c)
	e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	if st := c.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Errorf("motif sets should not share entries: %+v", st)
	}
	e.MaxFeatures = 1
	e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	e.UniformFeatureWeights = true
	e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	if st := c.Stats(); st.Misses != 5 {
		t.Errorf("expander knobs should change the key: %+v", st)
	}
}

func TestExpansionCachePermutationsShareEntry(t *testing.T) {
	e, _ := cacheTestExpander(t)
	nodes := []kb.NodeID{1, 0}
	key1 := e.ExpansionKey(nodes, motif.SetTS)
	key2 := e.ExpansionKey([]kb.NodeID{0, 1}, motif.SetTS)
	if key1 != key2 {
		t.Errorf("permuted node sets should share a key: %q vs %q", key1, key2)
	}
	// Key construction must not reorder the caller's slice.
	if nodes[0] != 1 || nodes[1] != 0 {
		t.Errorf("expansionKey mutated its input: %v", nodes)
	}
}

// TestExpansionCachePermutedHitMatchesColdMiss is the regression test
// for the canonical-storage guarantee: permutations of one entity set
// share a cache entry, yet each permutation's hit must be byte-identical
// to the cold (uncached) build for that same permutation — the hit
// rebinds the caller's query-node order while sharing the canonical
// features.
func TestExpansionCachePermutedHitMatchesColdMiss(t *testing.T) {
	b := kb.NewBuilder(8)
	must := func(id kb.NodeID, err error) kb.NodeID {
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := must(b.AddArticle("Cable car"))
	f := must(b.AddArticle("Funicular"))
	g := must(b.AddArticle("Gondola lift"))
	c := must(b.AddCategory("Category:Cable railways"))
	for _, err := range []error{
		b.AddMembership(a, c), b.AddMembership(f, c), b.AddMembership(g, c),
		b.AddLink(a, g), b.AddLink(g, a),
		b.AddLink(f, g), b.AddLink(g, f),
		b.AddLink(a, f), b.AddLink(f, a),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	e := NewExpander(b.Build(), analysis.Standard())
	perm1 := []kb.NodeID{a, f}
	perm2 := []kb.NodeID{f, a}
	cold1 := e.BuildQueryGraph(perm1, motif.SetTS)
	cold2 := e.BuildQueryGraph(perm2, motif.SetTS)
	if len(cold1.Features) == 0 {
		t.Fatal("fixture produced no expansion features")
	}
	cache := NewExpansionCache(16)
	miss := e.BuildQueryGraphCached(perm1, motif.SetTS, cache)
	hit := e.BuildQueryGraphCached(perm2, motif.SetTS, cache)
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("permutations should share one entry: %+v", st)
	}
	if !reflect.DeepEqual(miss, cold1) {
		t.Fatalf("miss differs from cold build: %+v vs %+v", miss, cold1)
	}
	if !reflect.DeepEqual(hit, cold2) {
		t.Fatalf("permuted hit differs from its own cold build: %+v vs %+v", hit, cold2)
	}
	if !reflect.DeepEqual(hit.Features, miss.Features) {
		t.Fatalf("features diverge across permutations: %+v vs %+v", hit.Features, miss.Features)
	}
}

// TestCanonicalGraph pins the storage form: unsorted nodes come back
// sorted without mutating the input graph's slices, while the feature
// slice is preserved verbatim — the builder's (|m_a| desc, article asc)
// order is already canonical, and re-sorting it would scramble graphs
// whose weights are uniform (see canonicalGraph).
func TestCanonicalGraph(t *testing.T) {
	feats := []Feature{
		{Article: 5, Weight: 1},
		{Article: 9, Weight: 4},
		{Article: 4, Weight: 4},
	}
	in := QueryGraph{
		QueryNodes: []kb.NodeID{3, 1, 2},
		Features:   feats,
	}
	got := canonicalGraph(in)
	if want := []kb.NodeID{1, 2, 3}; !reflect.DeepEqual(got.QueryNodes, want) {
		t.Fatalf("QueryNodes = %v, want %v", got.QueryNodes, want)
	}
	if &got.Features[0] != &feats[0] || !reflect.DeepEqual(got.Features, feats) {
		t.Fatalf("Features must pass through untouched: %+v", got.Features)
	}
	if in.QueryNodes[0] != 3 {
		t.Fatalf("canonicalGraph mutated its input: %+v", in)
	}
	// An already-canonical graph passes through with its slices shared.
	again := canonicalGraph(got)
	if &again.QueryNodes[0] != &got.QueryNodes[0] || &again.Features[0] != &got.Features[0] {
		t.Fatal("canonical input should not be copied")
	}
}

// TestUniformWeightsHitIsBitIdentical is the regression behind
// canonicalGraph's no-re-sort rule: under UniformFeatureWeights every
// weight is 1, so a weight-major re-sort in storage would reorder
// features and perturb downstream summation order; hit and miss must
// stay byte-identical.
func TestUniformWeightsHitIsBitIdentical(t *testing.T) {
	e, nodes := cacheTestExpander(t)
	e.UniformFeatureWeights = true
	c := NewExpansionCache(64)
	miss := e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	hit := e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	if !reflect.DeepEqual(miss, hit) {
		t.Fatalf("uniform-weight hit differs from miss: %+v vs %+v", miss, hit)
	}
	if !reflect.DeepEqual(hit, e.BuildQueryGraph(nodes, motif.SetTS)) {
		t.Fatal("uniform-weight hit differs from uncached build")
	}
}

func TestExpansionCacheEvictionBounded(t *testing.T) {
	c := NewExpansionCache(32)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("key-%d", i), QueryGraph{})
	}
	if n := c.Len(); n > 32 {
		t.Errorf("cache grew to %d entries, capacity 32", n)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions after overfilling")
	}
	if st.Entries != int64(c.Len()) {
		t.Errorf("Stats.Entries %d != Len %d", st.Entries, c.Len())
	}
}

func TestExpansionCacheLRUOrder(t *testing.T) {
	// A single shard (capacity rounds up to 1 per shard); use keys that
	// land in the same shard by brute force: with capacity 16 each shard
	// holds one entry, so instead test recency within one shard directly.
	c := NewExpansionCache(cacheShards * 2) // 2 per shard
	s := c.shard("x")
	var same []string
	for i := 0; len(same) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == s {
			same = append(same, k)
		}
	}
	c.Put(same[0], QueryGraph{})
	c.Put(same[1], QueryGraph{})
	c.Get(same[0]) // promote: same[1] is now LRU
	c.Put(same[2], QueryGraph{})
	if _, ok := c.Get(same[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(same[0]); !ok {
		t.Error("recently used entry was evicted")
	}
}

func TestExpansionCacheConcurrent(t *testing.T) {
	e, nodes := cacheTestExpander(t)
	c := NewExpansionCache(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				set := []motif.Set{motif.SetT, motif.SetTS, motif.SetS}[i%3]
				qg := e.BuildQueryGraphCached(nodes, set, c)
				if len(qg.QueryNodes) != len(nodes) {
					t.Errorf("worker %d: bad graph %+v", w, qg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("lookups %d != 1600", st.Hits+st.Misses)
	}
}

// TestExpansionKeyCoversEveryKnob is the regression test for the key
// completeness invariant: flipping ANY knob that can change what the
// expander produces — including the matcher-level ablations the key
// used to omit — must change the key, so a live cache can never serve
// an entry built under a different configuration.
func TestExpansionKeyCoversEveryKnob(t *testing.T) {
	e, nodes := cacheTestExpander(t)
	flips := []struct {
		name string
		flip func(e *Expander)
	}{
		{"MaxFeatures", func(e *Expander) { e.MaxFeatures = 7 }},
		{"UniformFeatureWeights", func(e *Expander) { e.UniformFeatureWeights = true }},
		{"TitleWindowSlack", func(e *Expander) { e.TitleWindowSlack = 2 }},
		{"Weights", func(e *Expander) { e.Weights = PartWeights{Query: 2, Entities: 1, Expansion: 1} }},
		{"RequireReciprocal", func(e *Expander) { e.Matcher().RequireReciprocal = false }},
		{"UseCategories", func(e *Expander) { e.Matcher().UseCategories = false }},
	}
	base := e.ExpansionKey(nodes, motif.SetTS)
	for _, f := range flips {
		e2 := NewExpander(e.graph, analysis.Standard())
		f.flip(e2)
		if key := e2.ExpansionKey(nodes, motif.SetTS); key == base {
			t.Errorf("flipping %s did not change the expansion key", f.name)
		}
	}
	// And through the cache: every flip must miss, never return the
	// entry a differently-configured expander stored.
	c := NewExpansionCache(64)
	e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	for i, f := range flips {
		e2 := NewExpander(e.graph, analysis.Standard())
		f.flip(e2)
		e2.BuildQueryGraphCached(nodes, motif.SetTS, c)
		if st := c.Stats(); st.Misses != int64(2+i) || st.Hits != 0 {
			t.Fatalf("after flipping %s: stats %+v, want %d misses / 0 hits", f.name, st, 2+i)
		}
	}
	// The zero Weights value and the explicit defaults behave
	// identically, so they must share a key.
	e3 := NewExpander(e.graph, analysis.Standard())
	e3.Weights = DefaultPartWeights
	if e3.ExpansionKey(nodes, motif.SetTS) != base {
		t.Error("explicit default weights should share the zero value's key")
	}
}

// TestExpansionKeyAblationHitIsCorrect pins the end-to-end behaviour the
// old key got wrong: build through a cache, flip a matcher ablation,
// build again through the SAME cache — the second result must equal a
// fresh uncached build under the flipped configuration, not the cached
// graph from the original one.
func TestExpansionKeyAblationHitIsCorrect(t *testing.T) {
	e, nodes := cacheTestExpander(t)
	c := NewExpansionCache(64)
	withCats := e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	e.Matcher().UseCategories = false
	got := e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	want := NewExpander(e.graph, analysis.Standard()) // fresh, no cache
	want.Matcher().UseCategories = false
	if fresh := want.BuildQueryGraph(nodes, motif.SetTS); !reflect.DeepEqual(got, fresh) {
		t.Fatalf("ablation toggle served a stale cache entry: got %+v, want %+v (pre-toggle entry was %+v)",
			got, fresh, withCats)
	}
}

// TestExpansionKeyKeepsDuplicateNodes pins the satellite question "do
// [a,a,b] and [a,b] expand identically?" — they do not (the duplicated
// node's motif instances are counted per occurrence, and its title
// enters the entity part twice), so the key must keep duplicates and
// the two sets must not share a cache entry.
func TestExpansionKeyKeepsDuplicateNodes(t *testing.T) {
	e, nodes := cacheTestExpander(t)
	a := nodes[0]
	dup := []kb.NodeID{a, a}
	qgOnce := e.BuildQueryGraph(nodes, motif.SetTS)
	qgTwice := e.BuildQueryGraph(dup, motif.SetTS)
	if len(qgOnce.Features) == 0 || len(qgTwice.Features) == 0 {
		t.Fatal("fixture produced no expansion features")
	}
	if qgTwice.Features[0].Weight != 2*qgOnce.Features[0].Weight {
		t.Fatalf("duplicate query node should double |m_a|: %v vs %v",
			qgTwice.Features[0], qgOnce.Features[0])
	}
	if e.ExpansionKey(nodes, motif.SetTS) == e.ExpansionKey(dup, motif.SetTS) {
		t.Fatal("[a] and [a,a] expand differently but share an expansion key")
	}
	c := NewExpansionCache(64)
	e.BuildQueryGraphCached(nodes, motif.SetTS, c)
	hit := e.BuildQueryGraphCached(dup, motif.SetTS, c)
	if !reflect.DeepEqual(hit, qgTwice) {
		t.Fatalf("duplicate-node build through cache = %+v, want %+v", hit, qgTwice)
	}
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("duplicate-node set shared an entry: %+v", st)
	}
}

// TestExpansionCacheCapacityExact is the regression test for the
// per-shard rounding bug: a cache bounded to N must hold exactly N
// entries once saturated — not 16·⌈N/16⌉.
func TestExpansionCacheCapacityExact(t *testing.T) {
	for _, n := range []int{1, 10, 16, 17} {
		c := NewExpansionCache(n)
		for i := 0; i < 2000; i++ {
			c.Put(fmt.Sprintf("key-%d", i), QueryGraph{})
		}
		if got := c.Len(); got != n {
			t.Errorf("capacity %d: saturated cache holds %d entries", n, got)
		}
	}
}

func TestSpliceResultsCFirstRunWins(t *testing.T) {
	res := func(name string, score float64) search.Result {
		return search.Result{Name: name, Score: score}
	}
	runT := []search.Result{res("a", 3), res("b", 2)}
	runTS := []search.Result{res("b", 9), res("c", 8), res("d", 7)}
	runS := []search.Result{res("d", 5), res("e", 4)}
	out := SpliceResultsC(10, runT, runTS, runS)
	want := map[string]float64{
		"a": 3, // only in T
		"b": 2, // T and TS collide → T's score wins
		"c": 8, // only in TS
		"d": 7, // TS and S collide → TS's score wins
		"e": 4, // only in S
	}
	if len(out) != len(want) {
		t.Fatalf("got %d results, want %d: %+v", len(out), len(want), out)
	}
	for _, r := range out {
		if want[r.Name] != r.Score {
			t.Errorf("%s: score %v, want %v (first-run-wins)", r.Name, r.Score, want[r.Name])
		}
	}
	// Order must follow the splice of the names.
	names := SpliceC(10, ResultNames(runT), ResultNames(runTS), ResultNames(runS))
	for i, r := range out {
		if names[i] != r.Name {
			t.Errorf("rank %d: %s, want %s", i, r.Name, names[i])
		}
	}
}

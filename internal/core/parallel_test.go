package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/kb"
	"repro/internal/motif"
)

func TestBuildQueryGraphsMatchesSequential(t *testing.T) {
	e, ids := expander(t)
	sets := [][]kb.NodeID{
		{ids["Query Article"]},
		{ids["First Expansion"]},
		{ids["Query Article"], ids["Second Expansion"]},
		nil,
	}
	for _, workers := range []int{0, 1, 2, 8} {
		got := e.BuildQueryGraphs(sets, motif.SetTS, workers)
		if len(got) != len(sets) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, nodes := range sets {
			want := e.BuildQueryGraph(nodes, motif.SetTS)
			if !reflect.DeepEqual(got[i], want) {
				t.Errorf("workers=%d query %d: parallel result differs", workers, i)
			}
		}
	}
}

func TestBuildQueryGraphsEmpty(t *testing.T) {
	e, _ := expander(t)
	if got := e.BuildQueryGraphs(nil, motif.SetT, 4); len(got) != 0 {
		t.Errorf("empty input should return empty output, got %v", got)
	}
}

// TestBuildQueryGraphsPanicCarriesQueryIndex poisons one query of a
// parallel batch with a node ID far outside the graph and asserts the
// resulting panic surfaces on the calling goroutine, names the offending
// query, and does not deadlock the worker pool.
func TestBuildQueryGraphsPanicCarriesQueryIndex(t *testing.T) {
	e, ids := expander(t)
	sets := [][]kb.NodeID{
		{ids["Query Article"]},
		{ids["First Expansion"]},
		{kb.NodeID(1 << 30)}, // poisoned: out of range, panics in BuildQueryGraph
		{ids["Query Article"]},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic from the poisoned query set")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string with context", r)
		}
		if !strings.Contains(msg, "query 2") {
			t.Errorf("panic message does not name the offending query: %q", msg)
		}
	}()
	e.BuildQueryGraphs(sets, motif.SetTS, 2)
}

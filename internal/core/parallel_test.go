package core

import (
	"reflect"
	"testing"

	"repro/internal/kb"
	"repro/internal/motif"
)

func TestBuildQueryGraphsMatchesSequential(t *testing.T) {
	e, ids := expander(t)
	sets := [][]kb.NodeID{
		{ids["Query Article"]},
		{ids["First Expansion"]},
		{ids["Query Article"], ids["Second Expansion"]},
		nil,
	}
	for _, workers := range []int{0, 1, 2, 8} {
		got := e.BuildQueryGraphs(sets, motif.SetTS, workers)
		if len(got) != len(sets) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, nodes := range sets {
			want := e.BuildQueryGraph(nodes, motif.SetTS)
			if !reflect.DeepEqual(got[i], want) {
				t.Errorf("workers=%d query %d: parallel result differs", workers, i)
			}
		}
	}
}

func TestBuildQueryGraphsEmpty(t *testing.T) {
	e, _ := expander(t)
	if got := e.BuildQueryGraphs(nil, motif.SetT, 4); len(got) != 0 {
		t.Errorf("empty input should return empty output, got %v", got)
	}
}

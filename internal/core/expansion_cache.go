package core

import (
	"container/list"
	"encoding/binary"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/kb"
	"repro/internal/motif"
)

// ExpansionCache memoises BuildQueryGraph results across requests. The
// companion paper ("Massive Query Expansion by Exploiting Graph
// Knowledge Bases") frames motif expansion as a precomputable,
// high-throughput operation; in a serving deployment the same entity
// sets recur constantly (head queries, retries, the three SQE_C runs of
// repeated queries), so the expensive motif search is worth caching.
//
// The cache is a sharded LRU: the key hashes to one of the shards, each
// shard holds its own mutex, recency list and map, so concurrent
// requests rarely contend on the same lock. Entries are keyed by the
// *sorted* query-node set plus the motif set and the expander knobs that
// change the output (MaxFeatures, UniformFeatureWeights) — permutations
// of the same entity set share one cached expansion. A hit returns the
// stored QueryGraph verbatim (shared slices, bit-identical to the miss
// that populated it); callers must treat cached graphs as immutable,
// which every consumer of BuildQueryGraph already does.
//
// Toggling matcher-level ablations (reciprocity, category conditions)
// changes expansion output without changing the key; do that only with a
// fresh cache (or none), as the experiments code does.
type ExpansionCache struct {
	shards [cacheShards]cacheShard
}

// cacheShards is the fixed shard count; a power of two so the hash maps
// to a shard with a mask. 16 shards keep lock contention negligible up
// to hundreds of concurrent requests.
const cacheShards = 16

type cacheShard struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key string
	qg  QueryGraph
}

// CacheStats are the cache's monotonic counters plus the current size.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int64
}

// Add accumulates o into s.
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Entries += o.Entries
}

// NewExpansionCache returns a cache bounded to capacity entries in
// total. capacity < cacheShards is rounded up so every shard can hold at
// least one entry.
func NewExpansionCache(capacity int) *ExpansionCache {
	perShard := (capacity + cacheShards - 1) / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &ExpansionCache{}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			capacity: perShard,
			ll:       list.New(),
			entries:  make(map[string]*list.Element),
		}
	}
	return c
}

// shard picks the shard for a key with an FNV-1a hash.
func (c *ExpansionCache) shard(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&(cacheShards-1)]
}

// Get returns the cached graph for key, promoting it to most recently
// used. An injected cache fault degrades the lookup to a miss — a
// failing cache backend slows requests down (they rebuild the
// expansion) but never fails them.
func (c *ExpansionCache) Get(key string) (QueryGraph, bool) {
	if fault.Check(fault.ExpansionCache) != nil {
		return QueryGraph{}, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return QueryGraph{}, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).qg, true
}

// Put stores qg under key, evicting the shard's least recently used
// entry when the shard is full. Re-putting an existing key refreshes its
// recency without duplicating it. An injected cache fault skips the
// store (the write-side twin of Get's degrade-to-miss).
func (c *ExpansionCache) Put(key string, qg QueryGraph) {
	if fault.Check(fault.ExpansionCache) != nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).qg = qg
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.capacity {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.entries, oldest.Value.(*cacheEntry).key)
			s.evictions++
		}
	}
	s.entries[key] = s.ll.PushFront(&cacheEntry{key: key, qg: qg})
}

// Len returns the current number of cached entries.
func (c *ExpansionCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats sums the per-shard counters. The snapshot is not atomic across
// shards, which is fine for monitoring.
func (c *ExpansionCache) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += int64(s.ll.Len())
		s.mu.Unlock()
	}
	return st
}

// expansionKey encodes (sorted query nodes, motif set, output-shaping
// expander knobs) into a compact string key.
func (e *Expander) expansionKey(queryNodes []kb.NodeID, set motif.Set) string {
	sorted := append([]kb.NodeID(nil), queryNodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buf := make([]byte, 0, 2+10+4*len(sorted))
	buf = append(buf, byte(set))
	flags := byte(0)
	if e.UniformFeatureWeights {
		flags = 1
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, int64(e.MaxFeatures))
	for _, n := range sorted {
		buf = binary.AppendVarint(buf, int64(n))
	}
	return string(buf)
}

// canonicalGraph returns qg in the cache's canonical storage form:
// query nodes sorted ascending, features in SortFeatures order
// (descending weight, ascending article). BuildQueryGraph already
// emits canonical features, so the sort is a defensive no-op there;
// slices are copied only when they actually need reordering, and the
// input graph is never mutated.
func canonicalGraph(qg QueryGraph) QueryGraph {
	nodeLess := func(i, j int) bool { return qg.QueryNodes[i] < qg.QueryNodes[j] }
	if !sort.SliceIsSorted(qg.QueryNodes, nodeLess) {
		sorted := append([]kb.NodeID(nil), qg.QueryNodes...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		qg.QueryNodes = sorted
	}
	fs := qg.Features
	featLess := func(i, j int) bool {
		if fs[i].Weight != fs[j].Weight {
			return fs[i].Weight > fs[j].Weight
		}
		return fs[i].Article < fs[j].Article
	}
	if !sort.SliceIsSorted(fs, featLess) {
		sorted := append([]Feature(nil), fs...)
		SortFeatures(sorted)
		qg.Features = sorted
	}
	return qg
}

// BuildQueryGraphCached is BuildQueryGraph through cache c: a hit
// returns the stored graph (treat it as immutable), a miss builds and
// stores it. c == nil degrades to a plain build.
//
// Entries are stored in canonical form (canonicalGraph) and a hit
// rebinds the caller's own query-node order, so permutations of one
// entity set share a single entry *and* every request — hit or cold
// miss — sees byte-identical output: the features are canonical and
// order-independent of the node permutation, while the query-node
// order (which fixes the entity part's child order and therefore the
// floating-point summation order downstream) is always the caller's.
func (e *Expander) BuildQueryGraphCached(queryNodes []kb.NodeID, set motif.Set, c *ExpansionCache) QueryGraph {
	if c == nil {
		return e.BuildQueryGraph(queryNodes, set)
	}
	key := e.expansionKey(queryNodes, set)
	if qg, ok := c.Get(key); ok {
		return QueryGraph{
			QueryNodes: append([]kb.NodeID(nil), queryNodes...),
			Features:   qg.Features,
		}
	}
	qg := e.BuildQueryGraph(queryNodes, set)
	c.Put(key, canonicalGraph(qg))
	return qg
}

// BuildQueryGraphCachedStats is BuildQueryGraphCached with the motif
// stage timed and the feature count recorded into ps (which may be
// nil). Cache hits still account their (tiny) lookup time to the motif
// stage, so stage percentages stay truthful under caching.
func (e *Expander) BuildQueryGraphCachedStats(queryNodes []kb.NodeID, set motif.Set, c *ExpansionCache, ps *PipelineStats) QueryGraph {
	if c == nil {
		return e.BuildQueryGraphStats(queryNodes, set, ps)
	}
	start := time.Now()
	qg := e.BuildQueryGraphCached(queryNodes, set, c)
	if ps != nil {
		ps.Stages.MotifSearch += time.Since(start)
		ps.Features += len(qg.Features)
	}
	return qg
}

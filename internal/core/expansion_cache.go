package core

import (
	"container/list"
	"encoding/binary"
	"math"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/kb"
	"repro/internal/motif"
)

// ExpansionCache memoises BuildQueryGraph results across requests. The
// companion paper ("Massive Query Expansion by Exploiting Graph
// Knowledge Bases") frames motif expansion as a precomputable,
// high-throughput operation; in a serving deployment the same entity
// sets recur constantly (head queries, retries, the three SQE_C runs of
// repeated queries), so the expensive motif search is worth caching.
//
// The cache is a sharded LRU: the key hashes to one of the shards, each
// shard holds its own mutex, recency list and map, so concurrent
// requests rarely contend on the same lock. Entries are keyed by the
// *sorted* query-node list plus the motif set and the complete expander
// configuration (see ExpansionKey) — permutations of the same entity
// set share one cached expansion, while toggling any knob that shapes
// the output (including the matcher-level reciprocity and category
// ablations) changes the key and misses. A hit returns the stored
// QueryGraph verbatim (shared slices, bit-identical to the miss that
// populated it); callers must treat cached graphs as immutable, which
// every consumer of BuildQueryGraph already does.
type ExpansionCache struct {
	shards [cacheShards]cacheShard
}

// cacheShards is the fixed shard count; a power of two so the hash maps
// to a shard with a mask. 16 shards keep lock contention negligible up
// to hundreds of concurrent requests.
const cacheShards = 16

type cacheShard struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key string
	qg  QueryGraph
}

// CacheStats are the cache's monotonic counters plus the current size.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int64
}

// Add accumulates o into s.
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Entries += o.Entries
}

// NewExpansionCache returns a cache bounded to exactly capacity entries
// in total: each shard gets ⌊capacity/16⌋ and the remainder is spread
// one entry each over the first capacity%16 shards. (Rounding every
// shard up, as this used to do, let a cache bounded to N hold up to
// 16·⌈N/16⌉ entries — 16x the bound for N<16.) Shards whose share is
// zero cache nothing; keys hashing there rebuild their expansion every
// time, which only costs work, never correctness.
func NewExpansionCache(capacity int) *ExpansionCache {
	if capacity < 0 {
		capacity = 0
	}
	base, rem := capacity/cacheShards, capacity%cacheShards
	c := &ExpansionCache{}
	for i := range c.shards {
		per := base
		if i < rem {
			per++
		}
		c.shards[i] = cacheShard{
			capacity: per,
			ll:       list.New(),
			entries:  make(map[string]*list.Element),
		}
	}
	return c
}

// shard picks the shard for a key with an FNV-1a hash.
func (c *ExpansionCache) shard(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&(cacheShards-1)]
}

// Get returns the cached graph for key, promoting it to most recently
// used. An injected cache fault degrades the lookup to a miss — a
// failing cache backend slows requests down (they rebuild the
// expansion) but never fails them.
func (c *ExpansionCache) Get(key string) (QueryGraph, bool) {
	if fault.Check(fault.ExpansionCache) != nil {
		return QueryGraph{}, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return QueryGraph{}, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).qg, true
}

// Put stores qg under key, evicting the shard's least recently used
// entry when the shard is full. Re-putting an existing key refreshes its
// recency without duplicating it. An injected cache fault skips the
// store (the write-side twin of Get's degrade-to-miss).
func (c *ExpansionCache) Put(key string, qg QueryGraph) {
	if fault.Check(fault.ExpansionCache) != nil {
		return
	}
	s := c.shard(key)
	if s.capacity == 0 {
		// This shard's share of the total bound is zero (capacity < 16);
		// storing anything would exceed the cache's advertised size.
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).qg = qg
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.capacity {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.entries, oldest.Value.(*cacheEntry).key)
			s.evictions++
		}
	}
	s.entries[key] = s.ll.PushFront(&cacheEntry{key: key, qg: qg})
}

// Len returns the current number of cached entries.
func (c *ExpansionCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats sums the per-shard counters. The snapshot is not atomic across
// shards, which is fine for monitoring.
func (c *ExpansionCache) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += int64(s.ll.Len())
		s.mu.Unlock()
	}
	return st
}

// ExpansionKey encodes (sorted query nodes, motif set, complete
// expander configuration) into a compact string key. The completeness
// invariant: every knob that can change what this Expander produces for
// queryNodes is in the key, so an entry can never be served under a
// configuration other than the one that built it — the property that
// lets keys outlive the process in the precomputed expansion store
// (DESIGN.md §5h). Concretely the key covers:
//
//   - the motif set and the sorted query-node list. Duplicate nodes are
//     deliberately kept: BuildQueryGraph([a,a,b]) differs from
//     BuildQueryGraph([a,b]) — the repeated node's motif instances are
//     counted once per occurrence and its title enters the entity part
//     twice — so [a,a,b] and [a,b] must not share an entry (see
//     TestExpansionKeyKeepsDuplicateNodes).
//   - the expander knobs MaxFeatures and UniformFeatureWeights, which
//     shape the feature list itself.
//   - the matcher ablation switches (RequireReciprocal, UseCategories),
//     which change Expand's output. These used to be missing — toggling
//     an ablation against a live cache silently returned stale graphs.
//   - the part Weights and TitleWindowSlack. These shape BuildQuery,
//     not the stored QueryGraph, but keying them means one key string
//     fully identifies the expansion configuration an entry was built
//     under — the conservative choice for entries that outlive a
//     process and may be consulted by a differently-configured server.
//     Weights are keyed in normalized form, so the zero value and the
//     explicit default weights share entries, as they share behaviour.
func (e *Expander) ExpansionKey(queryNodes []kb.NodeID, set motif.Set) string {
	sorted := append([]kb.NodeID(nil), queryNodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buf := make([]byte, 0, 2+20+24+4*len(sorted))
	buf = append(buf, byte(set))
	flags := byte(0)
	if e.UniformFeatureWeights {
		flags |= 1
	}
	flags |= e.matcher.ConditionBits() << 1
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, int64(e.MaxFeatures))
	buf = binary.AppendVarint(buf, int64(e.TitleWindowSlack))
	w := e.Weights.normalized()
	for _, f := range [3]float64{w.Query, w.Entities, w.Expansion} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	for _, n := range sorted {
		buf = binary.AppendVarint(buf, int64(n))
	}
	return string(buf)
}

// canonicalGraph returns qg in the cache's canonical storage form:
// query nodes sorted ascending, features exactly as BuildQueryGraph
// emitted them. The feature order is already canonical by construction
// — motif.foldMatches sums instance counts across query nodes and sorts
// by (|m_a| desc, article asc), so the slice is a pure function of the
// node *multiset*, independent of the caller's permutation. It must be
// stored verbatim, not re-sorted: under UniformFeatureWeights every
// weight collapses to 1 and a weight-major re-sort would scramble the
// |m_a| order, perturbing the downstream floating-point summation order
// and breaking hit/miss byte-identity at the ULP level.
func canonicalGraph(qg QueryGraph) QueryGraph {
	nodeLess := func(i, j int) bool { return qg.QueryNodes[i] < qg.QueryNodes[j] }
	if !sort.SliceIsSorted(qg.QueryNodes, nodeLess) {
		sorted := append([]kb.NodeID(nil), qg.QueryNodes...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		qg.QueryNodes = sorted
	}
	return qg
}

// BuildQueryGraphCached is BuildQueryGraph through cache c: a hit
// returns the stored graph (treat it as immutable), a miss builds and
// stores it. c == nil degrades to a plain build.
//
// Entries are stored in canonical form (canonicalGraph) and a hit
// rebinds the caller's own query-node order, so permutations of one
// entity set share a single entry *and* every request — hit or cold
// miss — sees byte-identical output: the features are canonical and
// order-independent of the node permutation, while the query-node
// order (which fixes the entity part's child order and therefore the
// floating-point summation order downstream) is always the caller's.
func (e *Expander) BuildQueryGraphCached(queryNodes []kb.NodeID, set motif.Set, c *ExpansionCache) QueryGraph {
	return e.BuildQueryGraphStored(queryNodes, set, c, nil)
}

// BuildQueryGraphCachedStats is BuildQueryGraphCached with the motif
// stage timed and the feature count recorded into ps (which may be
// nil). Cache hits still account their (tiny) lookup time to the motif
// stage, so stage percentages stay truthful under caching.
func (e *Expander) BuildQueryGraphCachedStats(queryNodes []kb.NodeID, set motif.Set, c *ExpansionCache, ps *PipelineStats) QueryGraph {
	return e.BuildQueryGraphStoredStats(queryNodes, set, c, nil, ps)
}

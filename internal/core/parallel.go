package core

import (
	"runtime"
	"sync"

	"repro/internal/kb"
	"repro/internal/motif"
)

// BuildQueryGraphs expands many queries concurrently. The paper's
// Section 4.4 notes that expansion "would probably be easily reduced by
// parallelizing the expansion process"; this implements that: motif
// search is read-only over the immutable KB graph, so queries fan out
// over a worker pool with no locking. workers <= 0 uses GOMAXPROCS.
//
// Results are positionally aligned with queryNodeSets.
func (e *Expander) BuildQueryGraphs(queryNodeSets [][]kb.NodeID, set motif.Set, workers int) []QueryGraph {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queryNodeSets) {
		workers = len(queryNodeSets)
	}
	out := make([]QueryGraph, len(queryNodeSets))
	if len(queryNodeSets) == 0 {
		return out
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = e.BuildQueryGraph(queryNodeSets[i], set)
			}
		}()
	}
	for i := range queryNodeSets {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/kb"
	"repro/internal/motif"
)

// BuildQueryGraphs expands many queries concurrently. The paper's
// Section 4.4 notes that expansion "would probably be easily reduced by
// parallelizing the expansion process"; this implements that: motif
// search is read-only over the immutable KB graph, so queries fan out
// over a worker pool with no locking. workers <= 0 uses GOMAXPROCS.
//
// Results are positionally aligned with queryNodeSets.
//
// A panic inside one worker does not kill the process with an unrelated
// goroutine stack: the worker recovers, records which query was being
// expanded, keeps draining the job channel (so the feeder never blocks
// on a dead worker), and the panic is rethrown on the calling goroutine
// with the query index and the original stack attached.
func (e *Expander) BuildQueryGraphs(queryNodeSets [][]kb.NodeID, set motif.Set, workers int) []QueryGraph {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queryNodeSets) {
		workers = len(queryNodeSets)
	}
	out := make([]QueryGraph, len(queryNodeSets))
	if len(queryNodeSets) == 0 {
		return out
	}
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var firstPanic *workerPanic
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if firstPanic == nil {
								firstPanic = &workerPanic{query: i, value: r, stack: debug.Stack()}
							}
							panicMu.Unlock()
						}
					}()
					out[i] = e.BuildQueryGraph(queryNodeSets[i], set)
				}()
			}
		}()
	}
	for i := range queryNodeSets {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstPanic != nil {
		panic(fmt.Sprintf("core: BuildQueryGraphs: query %d panicked: %v\n%s",
			firstPanic.query, firstPanic.value, firstPanic.stack))
	}
	return out
}

// workerPanic records the first panic observed by any worker so it can
// be rethrown, with context, on the goroutine that called
// BuildQueryGraphs.
type workerPanic struct {
	query int
	value any
	stack []byte
}

package rpc

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// startServer boots a Server on an ephemeral port and returns its
// address; handlers are registered by the caller before Serve via the
// setup callback.
func startServer(t *testing.T, setup func(*Server)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	if setup != nil {
		setup(s)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(s.Close)
	return ln.Addr().String()
}

type echoReq struct {
	X float64 `json:"x"`
	S string  `json:"s"`
}

func echoHandler(ctx context.Context, body json.RawMessage) (any, error) {
	var req echoReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	return req, nil
}

func TestCallRoundTripPreservesFloats(t *testing.T) {
	addr := startServer(t, func(s *Server) { s.Handle("echo", echoHandler) })
	c := NewClient(addr, ClientOptions{})
	defer c.Close()

	// A float with no short decimal representation must round-trip
	// bit-exactly — the engine's bit-identity guarantee rides on this.
	in := echoReq{X: 0.1 + 0.2, S: "motif"}
	var out echoReq
	if err := c.Call(context.Background(), "echo", in, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed payload: got %+v want %+v", out, in)
	}
	if st := c.Stats(); st.Calls != 1 || st.Attempts != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want 1 call, 1 attempt, 0 retries", st)
	}
}

func TestCallReusesPooledConnection(t *testing.T) {
	var conns int32
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	s.Handle("echo", echoHandler)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			atomic.AddInt32(&conns, 1)
			go s.serveConn(conn)
		}
	}()
	t.Cleanup(func() { _ = ln.Close(); s.Close() })

	c := NewClient(ln.Addr().String(), ClientOptions{})
	defer c.Close()
	for i := 0; i < 5; i++ {
		var out echoReq
		if err := c.Call(context.Background(), "echo", echoReq{X: float64(i)}, &out); err != nil {
			t.Fatal(err)
		}
	}
	if n := atomic.LoadInt32(&conns); n != 1 {
		t.Fatalf("5 sequential calls used %d connections, want 1 (pooling broken)", n)
	}
}

func TestServerErrorIsTerminal(t *testing.T) {
	var handled int32
	addr := startServer(t, func(s *Server) {
		s.Handle("fail", func(ctx context.Context, body json.RawMessage) (any, error) {
			atomic.AddInt32(&handled, 1)
			return nil, errors.New("no such shard")
		})
	})
	c := NewClient(addr, ClientOptions{MaxRetries: 3})
	defer c.Close()

	err := c.Call(context.Background(), "fail", nil, nil)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ServerError", err)
	}
	if se.Code != "handler_error" || se.Message != "no such shard" {
		t.Fatalf("server error = %+v", se)
	}
	if IsTransport(err) {
		t.Fatal("ServerError classified as transport")
	}
	if n := atomic.LoadInt32(&handled); n != 1 {
		t.Fatalf("handler ran %d times, want 1 (application errors must not retry)", n)
	}
}

func TestUnknownMethod(t *testing.T) {
	addr := startServer(t, func(s *Server) { s.Handle("echo", echoHandler) })
	c := NewClient(addr, ClientOptions{})
	defer c.Close()
	err := c.Call(context.Background(), "nope", nil, nil)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != "unknown_method" {
		t.Fatalf("err = %v, want ServerError{unknown_method}", err)
	}
}

func TestHandlerPanicContained(t *testing.T) {
	addr := startServer(t, func(s *Server) {
		s.Handle("boom", func(ctx context.Context, body json.RawMessage) (any, error) {
			panic("kaput")
		})
		s.Handle("echo", echoHandler)
	})
	c := NewClient(addr, ClientOptions{})
	defer c.Close()
	err := c.Call(context.Background(), "boom", nil, nil)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != "panic" {
		t.Fatalf("err = %v, want ServerError{panic}", err)
	}
	// The connection and the server survive the panic.
	var out echoReq
	if err := c.Call(context.Background(), "echo", echoReq{S: "alive"}, &out); err != nil {
		t.Fatalf("server dead after contained panic: %v", err)
	}
}

func TestRefusedConnectionIsTransportAndRetried(t *testing.T) {
	// Grab an ephemeral port and close it: connections are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	c := NewClient(addr, ClientOptions{MaxRetries: 2, RetryBackoff: time.Millisecond})
	defer c.Close()
	err = c.Call(context.Background(), "echo", nil, nil)
	if !IsTransport(err) {
		t.Fatalf("refused connection: err = %v, want transport error", err)
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Op != "dial" {
		t.Fatalf("err = %v, want dial transport error", err)
	}
	if st := c.Stats(); st.Attempts != 3 || st.Retries != 2 || st.Failures != 1 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries / 1 failure", st)
	}
}

func TestAttemptTimeoutIsTransport(t *testing.T) {
	// A server that accepts and reads but never answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1024)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	c := NewClient(ln.Addr().String(), ClientOptions{
		CallTimeout:  30 * time.Millisecond,
		MaxRetries:   1,
		RetryBackoff: time.Millisecond,
	})
	defer c.Close()
	start := time.Now()
	err = c.Call(context.Background(), "echo", nil, nil)
	if !IsTransport(err) {
		t.Fatalf("timeout: err = %v, want transport error", err)
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Op != "recv" {
		t.Fatalf("err = %v, want recv transport error", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want wrapped net timeout", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("two 30ms attempts took %v", el)
	}
	if st := c.Stats(); st.Attempts != 2 {
		t.Fatalf("stats = %+v, want 2 attempts", st)
	}
}

func TestMidStreamTruncationIsTransport(t *testing.T) {
	// A server that sends half a frame header and closes.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				if _, err := readFrame(conn); err == nil {
					// Announce a 100-byte payload, deliver 3 bytes, hang up.
					var hdr [4]byte
					binary.BigEndian.PutUint32(hdr[:], 100)
					_, _ = conn.Write(hdr[:])
					_, _ = conn.Write([]byte{1, 2, 3})
				}
				_ = conn.Close()
			}()
		}
	}()

	c := NewClient(ln.Addr().String(), ClientOptions{MaxRetries: 1, RetryBackoff: time.Millisecond})
	defer c.Close()
	err = c.Call(context.Background(), "echo", echoReq{}, nil)
	if !IsTransport(err) {
		t.Fatalf("truncation: err = %v, want transport error", err)
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Op != "recv" {
		t.Fatalf("err = %v, want recv transport error", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	// A server that announces a frame beyond MaxFrame.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = readFrame(conn)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
		_, _ = conn.Write(hdr[:])
	}()

	c := NewClient(ln.Addr().String(), ClientOptions{MaxRetries: -1})
	defer c.Close()
	err = c.Call(context.Background(), "echo", nil, nil)
	if !IsTransport(err) {
		t.Fatalf("oversized frame: err = %v, want transport error", err)
	}
}

func TestCallHonorsContextCancellation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	// Long backoff + cancelled context: Call must return promptly with
	// the context error instead of sleeping out its retry schedule.
	c := NewClient(addr, ClientOptions{MaxRetries: 5, RetryBackoff: time.Hour})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Call(ctx, "echo", nil, nil) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Call succeeded against a closed port")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call did not return after context cancellation")
	}
}

func TestGroupFailoverOnRefused(t *testing.T) {
	// Replica 0 refuses; replica 1 answers.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	_ = dead.Close()
	liveAddr := startServer(t, func(s *Server) { s.Handle("echo", echoHandler) })

	g := NewGroup([]*Client{
		NewClient(deadAddr, ClientOptions{MaxRetries: -1}),
		NewClient(liveAddr, ClientOptions{}),
	}, GroupOptions{})
	defer g.Close()

	out, err := g.Call(context.Background(), "echo", echoReq{S: "failover"},
		func() any { return &echoReq{} })
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*echoReq).S; got != "failover" {
		t.Fatalf("got %q from failover replica", got)
	}
	if st := g.Stats(); st.Failovers != 1 {
		t.Fatalf("group stats = %+v, want 1 failover", st)
	}
}

func TestGroupAllReplicasDownReturnsFirstError(t *testing.T) {
	var addrs []*Client
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		_ = ln.Close()
		addrs = append(addrs, NewClient(addr, ClientOptions{MaxRetries: -1}))
	}
	g := NewGroup(addrs, GroupOptions{})
	defer g.Close()
	_, err := g.Call(context.Background(), "echo", nil, nil)
	if !IsTransport(err) {
		t.Fatalf("all replicas down: err = %v, want transport error", err)
	}
}

func TestGroupHedgesSlowPrimary(t *testing.T) {
	// Primary answers after 300ms; secondary answers immediately. With a
	// 20ms hedge delay the call should finish well before the primary.
	slow := startServer(t, func(s *Server) {
		s.Handle("echo", func(ctx context.Context, body json.RawMessage) (any, error) {
			time.Sleep(300 * time.Millisecond)
			return echoReq{S: "slow"}, nil
		})
	})
	fast := startServer(t, func(s *Server) {
		s.Handle("echo", func(ctx context.Context, body json.RawMessage) (any, error) {
			return echoReq{S: "fast"}, nil
		})
	})
	g := NewGroup([]*Client{
		NewClient(slow, ClientOptions{}),
		NewClient(fast, ClientOptions{}),
	}, GroupOptions{HedgeDelay: 20 * time.Millisecond})
	defer g.Close()

	start := time.Now()
	out, err := g.Call(context.Background(), "echo", echoReq{}, func() any { return &echoReq{} })
	if err != nil {
		t.Fatal(err)
	}
	if got := out.(*echoReq).S; got != "fast" {
		t.Fatalf("hedge winner = %q, want the fast replica", got)
	}
	if el := time.Since(start); el > 250*time.Millisecond {
		t.Fatalf("hedged call took %v — waited for the slow primary", el)
	}
	if st := g.Stats(); st.Hedges != 1 {
		t.Fatalf("group stats = %+v, want 1 hedge", st)
	}
}

func TestGroupServerErrorNotFailedOver(t *testing.T) {
	var secondary int32
	failing := startServer(t, func(s *Server) {
		s.Handle("echo", func(ctx context.Context, body json.RawMessage) (any, error) {
			return nil, fmt.Errorf("bad query")
		})
	})
	other := startServer(t, func(s *Server) {
		s.Handle("echo", func(ctx context.Context, body json.RawMessage) (any, error) {
			atomic.AddInt32(&secondary, 1)
			return echoReq{}, nil
		})
	})
	g := NewGroup([]*Client{
		NewClient(failing, ClientOptions{}),
		NewClient(other, ClientOptions{}),
	}, GroupOptions{})
	defer g.Close()
	_, err := g.Call(context.Background(), "echo", nil, func() any { return &echoReq{} })
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ServerError", err)
	}
	if n := atomic.LoadInt32(&secondary); n != 0 {
		t.Fatalf("secondary handled %d calls after a deterministic application error", n)
	}
}

package rpc

import (
	"context"
	"errors"
	"sync"
	"time"
)

// GroupOptions parameterise a replica Group.
type GroupOptions struct {
	// HedgeDelay starts the same call on the next replica when the
	// current one has not answered within this delay; the first answer
	// wins. Zero disables hedging (pure sequential failover).
	HedgeDelay time.Duration
}

// GroupStats are a group's monotonic counters.
type GroupStats struct {
	// Calls counts Call invocations on the group.
	Calls int64
	// Hedges counts hedged (speculative) attempts launched.
	Hedges int64
	// Failovers counts replicas abandoned for the next one after a
	// transport error.
	Failovers int64
}

// Group fans calls over a replica set serving the same shard. A call
// walks the replicas in order: a transport error fails over to the
// next; with HedgeDelay set, a slow replica gets raced by the next one
// without waiting for it to fail. An application error (*ServerError)
// is terminal — the shard answered, and a twin would answer the same.
type Group struct {
	replicas []*Client
	opts     GroupOptions

	mu    sync.Mutex
	stats GroupStats
}

// NewGroup builds a group over the given replica clients; replicas must
// be non-empty.
func NewGroup(replicas []*Client, opts GroupOptions) *Group {
	if len(replicas) == 0 {
		panic("rpc: NewGroup with no replicas")
	}
	return &Group{replicas: append([]*Client(nil), replicas...), opts: opts}
}

// Replicas returns the group's clients (the live slice header copy;
// callers must not mutate).
func (g *Group) Replicas() []*Client { return g.replicas }

// Stats snapshots the group's counters.
func (g *Group) Stats() GroupStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Close closes every replica client.
func (g *Group) Close() {
	for _, c := range g.replicas {
		c.Close()
	}
}

// attemptResult carries one replica attempt's outcome to the selector.
type attemptResult struct {
	idx int
	err error
	out any
}

// Call invokes method across the replica set, decoding the winning
// response into out. Because hedged attempts race, each attempt decodes
// into its own value produced by newOut, and the winner is returned;
// this keeps a losing late response from clobbering the winner's
// buffer. newOut may be nil when the response body is discarded.
func (g *Group) Call(ctx context.Context, method string, req any, newOut func() any) (any, error) {
	g.mu.Lock()
	g.stats.Calls++
	g.mu.Unlock()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptResult, len(g.replicas))
	launch := func(idx int) {
		go func() {
			var out any
			if newOut != nil {
				out = newOut()
			}
			err := g.replicas[idx].Call(ctx, method, req, out)
			results <- attemptResult{idx: idx, err: err, out: out}
		}()
	}

	var hedge <-chan time.Time
	nextHedge := func() {
		if g.opts.HedgeDelay > 0 {
			t := time.NewTimer(g.opts.HedgeDelay)
			// The timer leaks until it fires; with per-call timers of
			// hedge-delay magnitude that is fine.
			hedge = t.C
		}
	}

	launched := 1
	launch(0)
	nextHedge()

	var firstErr error
	pending := launched
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedge:
			hedge = nil
			if launched < len(g.replicas) {
				g.mu.Lock()
				g.stats.Hedges++
				g.mu.Unlock()
				launch(launched)
				launched++
				pending++
				nextHedge()
			}
		case res := <-results:
			pending--
			if res.err == nil {
				return res.out, nil
			}
			var se *ServerError
			if errors.As(res.err, &se) {
				// The shard processed the request and failed it;
				// replicas are identical, so don't ask a twin.
				return nil, res.err
			}
			if firstErr == nil {
				firstErr = res.err
			}
			// Transport failure: fail over to the next unlaunched
			// replica immediately.
			if launched < len(g.replicas) {
				g.mu.Lock()
				g.stats.Failovers++
				g.mu.Unlock()
				launch(launched)
				launched++
				pending++
			} else if pending == 0 {
				return nil, firstErr
			}
		}
	}
}

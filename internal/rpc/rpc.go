// Package rpc is the wire layer of multi-node serving: a minimal
// framed-message RPC over TCP connecting the search coordinator to
// shard-server processes (see search.RemoteSharded and cmd/sqe-serve's
// shard/coordinator modes). The repo takes no dependencies, so the
// protocol is deliberately small:
//
//	frame   := length(uint32, big-endian) payload(length bytes)
//	payload := JSON
//
// A connection carries a sequence of request/response round trips in
// lock step (no multiplexing — the coordinator pools connections
// instead, which keeps both ends trivially correct). Requests name a
// method and carry a JSON body; responses carry either a body or a
// typed error:
//
//	request  {"method": "shard.eval", "body": {…}}
//	response {"ok": true,  "body": {…}}
//	response {"ok": false, "error": {"code": "…", "message": "…"}}
//
// JSON is safe for the engine's bit-identity guarantee: Go's encoder
// emits the shortest float64 representation that round-trips exactly,
// so statistics and scores cross the wire without loss.
//
// Failure handling is layered the same way the single-process engine
// layers it:
//
//   - Client.Call applies a per-attempt timeout and retries transport
//     errors (refused connections, timeouts, truncated frames) a
//     bounded number of times with linear backoff. Every registered
//     method is a pure read, so retrying after an ambiguous failure is
//     safe.
//   - Group fans a call over a replica set: sequential failover on
//     error, plus an optional hedge — if the primary has not answered
//     within HedgeDelay, the same call starts on the next replica and
//     the first answer wins.
//   - Application errors (a handler returning an error) come back as
//     *ServerError and are never retried or hedged around: the replica
//     answered; asking again or asking a twin would answer the same.
//
// The fault points rpc.client_call and rpc.server_handle let the chaos
// harness inject refused/slow/truncated calls deterministically.
package rpc

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/fault"
)

// MaxFrame caps a frame's payload size (default 64 MiB). A frame header
// announcing more than this is treated as a corrupt stream, not an
// allocation request.
const MaxFrame = 64 << 20

// writeFrame writes one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("rpc: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("rpc: frame header announces %d bytes, exceeding MaxFrame", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// request is the client→server payload.
type request struct {
	Method string          `json:"method"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// response is the server→client payload.
type response struct {
	OK    bool            `json:"ok"`
	Body  json.RawMessage `json:"body,omitempty"`
	Error *wireError      `json:"error,omitempty"`
}

// wireError is the typed error envelope an application failure crosses
// the wire as.
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ServerError is an application-level error returned by the remote
// handler. It is terminal for the call: the server processed the
// request and answered — retrying or failing over to a replica would
// produce the same answer.
type ServerError struct {
	Code    string
	Message string
}

// Error implements error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("rpc: server error %s: %s", e.Code, e.Message)
}

// TransportError is a transport-level failure: dial refused, attempt
// deadline exceeded, connection reset, truncated or corrupt frame. The
// remote may or may not have seen the request; since every method is a
// pure read, the client retries these.
type TransportError struct {
	Addr string
	Op   string // "dial", "send", "recv"
	Err  error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("rpc: %s %s: %v", e.Op, e.Addr, e.Err)
}

// Unwrap exposes the underlying cause (net.Error, context errors, …).
func (e *TransportError) Unwrap() error { return e.Err }

// IsTransport reports whether err is (or wraps) a transport failure —
// the class the degradation layer maps to a dead/slow replica.
func IsTransport(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

// Handler serves one method: decode the raw body, do the work, return a
// result to be JSON-encoded (or an error, which crosses the wire as a
// ServerError).
type Handler func(ctx context.Context, body json.RawMessage) (any, error)

// Server dispatches framed requests to registered handlers. Construct
// with NewServer, register with Handle, then Serve a listener.
type Server struct {
	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[net.Conn]struct{}
	ln       net.Listener
	closed   bool
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Handle registers h for method; registering after Serve started is not
// synchronised and must be completed first.
func (s *Server) Handle(method string, h Handler) { s.handlers[method] = h }

// Serve accepts connections on ln until Close. Each connection is
// served by its own goroutine, one request at a time.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting and closes every open connection.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
}

// serveConn runs the request/response loop of one connection.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return // client went away or stream corrupt; nothing to answer
		}
		var req request
		if err := json.Unmarshal(payload, &req); err != nil {
			_ = s.reply(conn, response{Error: &wireError{Code: "bad_request", Message: err.Error()}})
			return
		}
		resp := s.dispatch(req)
		if err := s.reply(conn, resp); err != nil {
			return
		}
	}
}

// dispatch runs one request through the fault hook and its handler,
// containing handler panics into error responses so one bad request
// cannot kill the shard process.
func (s *Server) dispatch(req request) (resp response) {
	defer func() {
		if v := recover(); v != nil {
			resp = response{Error: &wireError{Code: "panic", Message: fmt.Sprint(v)}}
		}
	}()
	if err := fault.Check(fault.RPCServer); err != nil {
		return response{Error: &wireError{Code: "injected_fault", Message: err.Error()}}
	}
	h, ok := s.handlers[req.Method]
	if !ok {
		return response{Error: &wireError{Code: "unknown_method", Message: fmt.Sprintf("no handler for %q", req.Method)}}
	}
	out, err := h(context.Background(), req.Body)
	if err != nil {
		return response{Error: &wireError{Code: "handler_error", Message: err.Error()}}
	}
	body, err := json.Marshal(out)
	if err != nil {
		return response{Error: &wireError{Code: "encode_error", Message: err.Error()}}
	}
	return response{OK: true, Body: body}
}

func (s *Server) reply(conn net.Conn, resp response) error {
	payload, err := json.Marshal(resp)
	if err != nil {
		return err
	}
	return writeFrame(conn, payload)
}

// ClientOptions parameterise a Client; zero values select the noted
// defaults.
type ClientOptions struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds each call attempt end to end — send + wait +
	// receive (default 5s). The caller's context can tighten it further.
	CallTimeout time.Duration
	// MaxRetries re-runs a call that failed with a transport error up
	// to this many extra times (default 1; negative disables).
	MaxRetries int
	// RetryBackoff is the base delay between retries; attempt i waits
	// i×RetryBackoff (default 2ms).
	RetryBackoff time.Duration
	// MaxIdleConns bounds the pooled idle connections (default 4).
	MaxIdleConns int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout == 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 1
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	if o.MaxIdleConns == 0 {
		o.MaxIdleConns = 4
	}
	return o
}

// CallStats are a client's monotonic counters.
type CallStats struct {
	// Calls counts Call invocations (not attempts).
	Calls int64
	// Attempts counts wire attempts, including retries.
	Attempts int64
	// Retries counts re-attempts after transport errors.
	Retries int64
	// Failures counts Calls that ultimately failed.
	Failures int64
}

// Client calls one address. Safe for concurrent use; connections are
// pooled per client.
type Client struct {
	addr string
	opts ClientOptions

	mu    sync.Mutex
	idle  []net.Conn
	stats CallStats
}

// NewClient returns a client for addr. No connection is made until the
// first Call.
func NewClient(addr string, opts ClientOptions) *Client {
	return &Client{addr: addr, opts: opts.withDefaults()}
}

// Addr returns the address this client calls.
func (c *Client) Addr() string { return c.addr }

// Stats snapshots the client's counters.
func (c *Client) Stats() CallStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close drops every pooled connection.
func (c *Client) Close() {
	c.mu.Lock()
	for _, conn := range c.idle {
		_ = conn.Close()
	}
	c.idle = nil
	c.mu.Unlock()
}

// getConn pops a pooled connection or dials a fresh one.
func (c *Client) getConn(ctx context.Context) (net.Conn, bool, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, true, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, false, &TransportError{Addr: c.addr, Op: "dial", Err: err}
	}
	return conn, false, nil
}

// putConn returns a healthy connection to the pool (or closes it when
// the pool is full).
func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	if len(c.idle) < c.opts.MaxIdleConns {
		c.idle = append(c.idle, conn)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	_ = conn.Close()
}

// Call invokes method with req, decoding the response body into out
// (which may be nil to discard it). Transport failures are retried up
// to MaxRetries times; *ServerError is terminal.
func (c *Client) Call(ctx context.Context, method string, req any, out any) error {
	c.mu.Lock()
	c.stats.Calls++
	c.mu.Unlock()
	var err error
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.stats.Retries++
			c.mu.Unlock()
			if c.opts.RetryBackoff > 0 {
				t := time.NewTimer(time.Duration(attempt) * c.opts.RetryBackoff)
				cancelled := false
				select {
				case <-ctx.Done():
					t.Stop()
					err = ctx.Err()
					cancelled = true
				case <-t.C:
				}
				if cancelled {
					break
				}
			}
		}
		err = c.attempt(ctx, method, req, out)
		if err == nil || !IsTransport(err) || ctx.Err() != nil {
			break
		}
	}
	if err != nil {
		c.mu.Lock()
		c.stats.Failures++
		c.mu.Unlock()
	}
	return err
}

// attempt runs one wire attempt under the per-attempt timeout. A
// pooled connection that fails on send is assumed stale (the server
// may have closed it between calls) and the attempt is re-run once on
// a fresh connection before the failure counts.
func (c *Client) attempt(ctx context.Context, method string, req any, out any) error {
	c.mu.Lock()
	c.stats.Attempts++
	c.mu.Unlock()
	if err := fault.Check(fault.RPCClient); err != nil {
		return &TransportError{Addr: c.addr, Op: "send", Err: err}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("rpc: encode request: %w", err)
	}
	payload, err := json.Marshal(request{Method: method, Body: body})
	if err != nil {
		return fmt.Errorf("rpc: encode frame: %w", err)
	}
	for {
		conn, pooled, err := c.getConn(ctx)
		if err != nil {
			return err
		}
		err = c.roundTrip(ctx, conn, payload, out)
		if err == nil {
			c.putConn(conn)
			return nil
		}
		_ = conn.Close()
		// A stale pooled connection surfaces as an immediate transport
		// error; retry the attempt once on a fresh dial before failing.
		if pooled && IsTransport(err) && ctx.Err() == nil {
			pooledRetry := &TransportError{}
			if errors.As(err, &pooledRetry) && pooledRetry.Op != "dial" {
				continue
			}
		}
		return err
	}
}

// roundTrip writes one frame and reads one response on conn, under the
// attempt deadline.
func (c *Client) roundTrip(ctx context.Context, conn net.Conn, payload []byte, out any) error {
	deadline := time.Now().Add(c.opts.CallTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return &TransportError{Addr: c.addr, Op: "send", Err: err}
	}
	if err := writeFrame(conn, payload); err != nil {
		return &TransportError{Addr: c.addr, Op: "send", Err: err}
	}
	respPayload, err := readFrame(conn)
	if err != nil {
		return &TransportError{Addr: c.addr, Op: "recv", Err: err}
	}
	var resp response
	if err := json.Unmarshal(respPayload, &resp); err != nil {
		return &TransportError{Addr: c.addr, Op: "recv", Err: err}
	}
	if !resp.OK {
		we := resp.Error
		if we == nil {
			we = &wireError{Code: "unknown", Message: "server returned failure with no error"}
		}
		return &ServerError{Code: we.Code, Message: we.Message}
	}
	if out != nil {
		if err := json.Unmarshal(resp.Body, out); err != nil {
			return &TransportError{Addr: c.addr, Op: "recv", Err: fmt.Errorf("decode response body: %w", err)}
		}
	}
	return nil
}

// Package eval implements the evaluation methodology of the paper's
// Section 3: precision at the default TrecEval tops and paired two-tailed
// t-tests at p < 0.05 for significance daggers.
package eval

import (
	"fmt"
	"sort"
)

// Tops are the default TrecEval precision cutoffs the paper reports.
var Tops = []int{5, 10, 15, 20, 30, 100, 200, 500, 1000}

// Qrels holds relevance judgments: query ID → set of relevant document
// names.
type Qrels map[string]map[string]bool

// AddJudgment marks doc relevant for query.
func (q Qrels) AddJudgment(query, doc string) {
	m, ok := q[query]
	if !ok {
		m = make(map[string]bool)
		q[query] = m
	}
	m[doc] = true
}

// NumRelevant returns the number of relevant documents for query.
func (q Qrels) NumRelevant(query string) int { return len(q[query]) }

// Queries returns the judged query IDs, sorted.
func (q Qrels) Queries() []string {
	out := make([]string, 0, len(q))
	for id := range q {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AvgRelevant returns the mean number of relevant documents per judged
// query (the paper quotes 68.8 for Image CLEF, 31.32 and 50.6 for CHiC).
func (q Qrels) AvgRelevant() float64 {
	if len(q) == 0 {
		return 0
	}
	total := 0
	for _, m := range q {
		total += len(m)
	}
	return float64(total) / float64(len(q))
}

// Run is a retrieval run: query ID → ranked document names (best first).
type Run map[string][]string

// PrecisionAt computes P@k for one ranked list: relevant-in-top-k / k.
// Lists shorter than k are padded with non-relevant (TrecEval semantics).
func PrecisionAt(rel map[string]bool, ranked []string, k int) float64 {
	if k <= 0 {
		return 0
	}
	n := k
	if len(ranked) < n {
		n = len(ranked)
	}
	hits := 0
	for i := 0; i < n; i++ {
		if rel[ranked[i]] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// PerQuery returns P@k per query in the order of qrels.Queries(). Queries
// missing from the run contribute 0, queries with zero relevant documents
// contribute 0 (they cannot be satisfied — the paper keeps them in the
// average, which is why CHiC 2012 scores are depressed).
func PerQuery(qrels Qrels, run Run, k int) []float64 {
	ids := qrels.Queries()
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = PrecisionAt(qrels[id], run[id], k)
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanPrecisionAt returns mean P@k over all judged queries.
func MeanPrecisionAt(qrels Qrels, run Run, k int) float64 {
	return Mean(PerQuery(qrels, run, k))
}

// Report holds mean precision at every top for one run, plus the
// per-query values needed for significance testing.
type Report struct {
	Name string
	// Mean[k] is mean P@k.
	Mean map[int]float64
	// PerQuery[k] is P@k per query, ordered by qrels.Queries().
	PerQuery map[int][]float64
}

// Evaluate computes a Report for run over the standard Tops.
func Evaluate(name string, qrels Qrels, run Run) *Report {
	r := &Report{
		Name:     name,
		Mean:     make(map[int]float64, len(Tops)),
		PerQuery: make(map[int][]float64, len(Tops)),
	}
	for _, k := range Tops {
		pq := PerQuery(qrels, run, k)
		r.PerQuery[k] = pq
		r.Mean[k] = Mean(pq)
	}
	return r
}

// SignificantOver reports whether this run's P@k improves over base with
// p < alpha under a paired two-tailed t-test, at every requested top.
func (r *Report) SignificantOver(base *Report, k int, alpha float64) bool {
	a, b := r.PerQuery[k], base.PerQuery[k]
	if len(a) == 0 || len(a) != len(b) {
		return false
	}
	t, p := PairedTTest(a, b)
	return t > 0 && p < alpha
}

// PercentGain returns the percentage improvement of x over base, the
// quantity plotted in the paper's Figures 5 and 6 and the %G columns of
// Table 3. A zero base with positive x reports +100%.
func PercentGain(x, base float64) float64 {
	if base == 0 {
		if x == 0 {
			return 0
		}
		return 100
	}
	return (x - base) / base * 100
}

// BestOf returns, per top, the maximum mean precision across reports —
// the "best of QL_Q, QL_E and QL_Q&E" denominator of Figures 5 and 6.
func BestOf(reports ...*Report) map[int]float64 {
	best := make(map[int]float64, len(Tops))
	for _, k := range Tops {
		for _, r := range reports {
			if v := r.Mean[k]; v > best[k] {
				best[k] = v
			}
		}
	}
	return best
}

// BestPerQuery returns, per top, the element-wise maximum per-query
// precision across reports, used as the paired baseline for significance
// against "the best execution" (paper Figure 6 / Table 2 daggers).
func BestPerQuery(reports ...*Report) map[int][]float64 {
	out := make(map[int][]float64, len(Tops))
	if len(reports) == 0 {
		return out
	}
	for _, k := range Tops {
		n := len(reports[0].PerQuery[k])
		best := make([]float64, n)
		for _, r := range reports {
			pq := r.PerQuery[k]
			if len(pq) != n {
				panic(fmt.Sprintf("eval: mismatched per-query lengths at top %d: %d vs %d", k, len(pq), n))
			}
			for i, v := range pq {
				if v > best[i] {
					best[i] = v
				}
			}
		}
		out[k] = best
	}
	return out
}

package eval

import (
	"math"
	"sort"
)

// This file extends the evaluation substrate beyond the paper's P@k with
// the rest of the standard TrecEval measures, so runs produced by this
// library can be analysed the way any IR system's would be.

// AveragePrecision computes AP for one ranked list: the mean of the
// precision values at each relevant document's rank, normalised by the
// number of relevant documents (uninterpolated AP, trec_eval "map").
func AveragePrecision(rel map[string]bool, ranked []string) float64 {
	if len(rel) == 0 {
		return 0
	}
	hits := 0
	var sum float64
	seen := make(map[string]bool, len(ranked))
	for i, doc := range ranked {
		if seen[doc] {
			continue // duplicate docids never earn credit twice
		}
		seen[doc] = true
		if rel[doc] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(rel))
}

// MeanAveragePrecision computes MAP over all judged queries.
func MeanAveragePrecision(qrels Qrels, run Run) float64 {
	ids := qrels.Queries()
	if len(ids) == 0 {
		return 0
	}
	var sum float64
	for _, id := range ids {
		sum += AveragePrecision(qrels[id], run[id])
	}
	return sum / float64(len(ids))
}

// ReciprocalRank returns 1/rank of the first relevant document, or 0
// when none is retrieved.
func ReciprocalRank(rel map[string]bool, ranked []string) float64 {
	for i, doc := range ranked {
		if rel[doc] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// MeanReciprocalRank computes MRR over all judged queries.
func MeanReciprocalRank(qrels Qrels, run Run) float64 {
	ids := qrels.Queries()
	if len(ids) == 0 {
		return 0
	}
	var sum float64
	for _, id := range ids {
		sum += ReciprocalRank(qrels[id], run[id])
	}
	return sum / float64(len(ids))
}

// RecallAt computes recall at cutoff k: relevant-retrieved-in-top-k /
// total-relevant (0 for queries without relevant documents).
func RecallAt(rel map[string]bool, ranked []string, k int) float64 {
	if len(rel) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	seen := make(map[string]bool, k)
	for i := 0; i < k; i++ {
		if seen[ranked[i]] {
			continue
		}
		seen[ranked[i]] = true
		if rel[ranked[i]] {
			hits++
		}
	}
	return float64(hits) / float64(len(rel))
}

// RPrecision computes precision at rank R where R is the number of
// relevant documents for the query (trec_eval "Rprec").
func RPrecision(rel map[string]bool, ranked []string) float64 {
	if len(rel) == 0 {
		return 0
	}
	return PrecisionAt(rel, ranked, len(rel))
}

// NDCGAt computes normalised discounted cumulative gain at cutoff k with
// binary gains: DCG = Σ 1/log2(i+1) over relevant ranks i (1-based),
// normalised by the ideal DCG of min(k, |rel|) relevant documents at the
// top.
func NDCGAt(rel map[string]bool, ranked []string, k int) float64 {
	if len(rel) == 0 || k <= 0 {
		return 0
	}
	var dcg float64
	n := k
	if len(ranked) < n {
		n = len(ranked)
	}
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		if seen[ranked[i]] {
			continue
		}
		seen[ranked[i]] = true
		if rel[ranked[i]] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := len(rel)
	if ideal > k {
		ideal = k
	}
	var idcg float64
	for i := 0; i < ideal; i++ {
		idcg += 1 / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// Summary aggregates all supported measures for a run.
type Summary struct {
	Name string
	MAP  float64
	MRR  float64
	// P is mean precision at the standard Tops.
	P map[int]float64
	// Recall is mean recall at the standard Tops.
	Recall map[int]float64
	// NDCG10 is mean nDCG@10.
	NDCG10 float64
	// RPrec is mean R-precision.
	RPrec float64
	// NumQueries counts the judged queries.
	NumQueries int
}

// Summarize computes a full metric summary of run against qrels.
func Summarize(name string, qrels Qrels, run Run) *Summary {
	ids := qrels.Queries()
	s := &Summary{
		Name:       name,
		P:          make(map[int]float64, len(Tops)),
		Recall:     make(map[int]float64, len(Tops)),
		NumQueries: len(ids),
	}
	if len(ids) == 0 {
		return s
	}
	for _, id := range ids {
		rel, ranked := qrels[id], run[id]
		s.MAP += AveragePrecision(rel, ranked)
		s.MRR += ReciprocalRank(rel, ranked)
		s.NDCG10 += NDCGAt(rel, ranked, 10)
		s.RPrec += RPrecision(rel, ranked)
		for _, k := range Tops {
			s.P[k] += PrecisionAt(rel, ranked, k)
			s.Recall[k] += RecallAt(rel, ranked, k)
		}
	}
	n := float64(len(ids))
	s.MAP /= n
	s.MRR /= n
	s.NDCG10 /= n
	s.RPrec /= n
	for _, k := range Tops {
		s.P[k] /= n
		s.Recall[k] /= n
	}
	return s
}

// RobustnessIndex computes Sakai's robustness index of run vs base at
// P@k: (improved − hurt) / queries, in [−1, 1]. A positive value means
// the treatment helps more queries than it hurts — the per-query view
// behind the paper's significance daggers.
func RobustnessIndex(qrels Qrels, run, base Run, k int) float64 {
	ids := qrels.Queries()
	if len(ids) == 0 {
		return 0
	}
	improved, hurt := 0, 0
	for _, id := range ids {
		a := PrecisionAt(qrels[id], run[id], k)
		b := PrecisionAt(qrels[id], base[id], k)
		switch {
		case a > b:
			improved++
		case a < b:
			hurt++
		}
	}
	return float64(improved-hurt) / float64(len(ids))
}

// PerQueryDelta returns, per query ID, the P@k difference run − base,
// sorted by query ID — the raw material for win/loss analyses.
func PerQueryDelta(qrels Qrels, run, base Run, k int) []QueryDelta {
	ids := qrels.Queries()
	out := make([]QueryDelta, 0, len(ids))
	for _, id := range ids {
		out = append(out, QueryDelta{
			QueryID: id,
			Delta:   PrecisionAt(qrels[id], run[id], k) - PrecisionAt(qrels[id], base[id], k),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QueryID < out[j].QueryID })
	return out
}

// QueryDelta is one query's precision difference between two runs.
type QueryDelta struct {
	QueryID string
	Delta   float64
}

package eval

import "math"

// PairedTTest runs a paired two-tailed Student t-test on equal-length
// samples a and b. It returns the t statistic of the differences a-b and
// the two-tailed p-value. With fewer than two pairs, or zero variance in
// the differences, it returns t=0, p=1 (no evidence either way) unless
// the zero-variance differences are all non-zero, in which case the
// improvement is deterministic and p=0 is returned with t=±Inf.
func PairedTTest(a, b []float64) (t, p float64) {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0, 1
	}
	var mean float64
	for i := range a {
		mean += a[i] - b[i]
	}
	mean /= float64(n)
	var ss float64
	for i := range a {
		d := a[i] - b[i] - mean
		ss += d * d
	}
	variance := ss / float64(n-1)
	if variance == 0 {
		if mean == 0 {
			return 0, 1
		}
		return math.Inf(int(math.Copysign(1, mean))), 0
	}
	se := math.Sqrt(variance / float64(n))
	t = mean / se
	df := float64(n - 1)
	// Two-tailed p-value from the regularised incomplete beta function:
	// p = I_{df/(df+t²)}(df/2, 1/2).
	x := df / (df + t*t)
	p = regIncBeta(df/2, 0.5, x)
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return t, p
}

// regIncBeta computes the regularised incomplete beta function
// I_x(a, b) using the continued-fraction expansion (Numerical Recipes
// §6.4, modified Lentz algorithm).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpMin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// lgamma wraps math.Lgamma discarding the sign (arguments here are
// always positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

package eval

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TREC interchange formats, so runs and judgments can round-trip with
// the standard trec_eval toolchain the paper evaluates with.
//
// Run format (one line per retrieved document):
//
//	<queryID> Q0 <docName> <rank> <score> <runTag>
//
// Qrels format:
//
//	<queryID> 0 <docName> <relevance>

// WriteRunTREC writes run in TREC format. Scores are synthesised from
// ranks (descending) when the caller only has ordered names; rank is
// 1-based.
func WriteRunTREC(w io.Writer, run Run, tag string) error {
	bw := bufio.NewWriter(w)
	ids := make([]string, 0, len(run))
	for id := range run {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for rank, doc := range run[id] {
			// Synthetic score: strictly decreasing with rank so
			// trec_eval reconstructs the same ordering.
			score := 1.0 / float64(rank+1)
			if _, err := fmt.Fprintf(bw, "%s Q0 %s %d %.6f %s\n", id, doc, rank+1, score, tag); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadRunTREC parses a TREC run file. Documents are ordered by ascending
// rank per query; malformed lines are reported with their line number.
func ReadRunTREC(r io.Reader) (Run, error) {
	type entry struct {
		doc   string
		rank  int
		score float64
	}
	perQuery := make(map[string][]entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 6 {
			return nil, fmt.Errorf("eval: run line %d: %d fields, want 6", lineNo, len(fields))
		}
		rank, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("eval: run line %d: bad rank %q", lineNo, fields[3])
		}
		score, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("eval: run line %d: bad score %q", lineNo, fields[4])
		}
		perQuery[fields[0]] = append(perQuery[fields[0]], entry{doc: fields[2], rank: rank, score: score})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	run := make(Run, len(perQuery))
	for id, entries := range perQuery {
		// TREC semantics: order by descending score, ties by rank.
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].score != entries[j].score {
				return entries[i].score > entries[j].score
			}
			return entries[i].rank < entries[j].rank
		})
		docs := make([]string, len(entries))
		for i, e := range entries {
			docs[i] = e.doc
		}
		run[id] = docs
	}
	return run, nil
}

// WriteQrelsTREC writes qrels in TREC format (relevance 1 for every
// judged-relevant document; this reproduction has binary judgments).
func WriteQrelsTREC(w io.Writer, qrels Qrels) error {
	bw := bufio.NewWriter(w)
	for _, id := range qrels.Queries() {
		docs := make([]string, 0, len(qrels[id]))
		for d := range qrels[id] {
			docs = append(docs, d)
		}
		sort.Strings(docs)
		for _, d := range docs {
			if _, err := fmt.Fprintf(bw, "%s 0 %s 1\n", id, d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadQrelsTREC parses a TREC qrels file; documents with relevance > 0
// are judged relevant, relevance 0 lines register the query without a
// judgment (so zero-relevant queries survive the round trip).
func ReadQrelsTREC(r io.Reader) (Qrels, error) {
	qrels := make(Qrels)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("eval: qrels line %d: %d fields, want 4", lineNo, len(fields))
		}
		relevance, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("eval: qrels line %d: bad relevance %q", lineNo, fields[3])
		}
		if _, ok := qrels[fields[0]]; !ok {
			qrels[fields[0]] = make(map[string]bool)
		}
		if relevance > 0 {
			qrels[fields[0]][fields[2]] = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return qrels, nil
}

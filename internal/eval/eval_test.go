package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrecisionAt(t *testing.T) {
	rel := map[string]bool{"a": true, "b": true, "c": true}
	ranked := []string{"a", "x", "b", "y", "z"}
	tests := []struct {
		k    int
		want float64
	}{
		{1, 1},
		{2, 0.5},
		{3, 2.0 / 3},
		{5, 2.0 / 5},
		{10, 2.0 / 10}, // short list pads with non-relevant
		{0, 0},
	}
	for _, tc := range tests {
		if got := PrecisionAt(rel, ranked, tc.k); math.Abs(got-tc.want) > 1e-15 {
			t.Errorf("P@%d = %f, want %f", tc.k, got, tc.want)
		}
	}
	if got := PrecisionAt(rel, nil, 5); got != 0 {
		t.Errorf("empty run P@5 = %f", got)
	}
}

func TestQrels(t *testing.T) {
	q := make(Qrels)
	q.AddJudgment("q1", "d1")
	q.AddJudgment("q1", "d2")
	q.AddJudgment("q2", "d3")
	q["q3"] = map[string]bool{}
	if q.NumRelevant("q1") != 2 || q.NumRelevant("q3") != 0 {
		t.Error("NumRelevant wrong")
	}
	ids := q.Queries()
	if len(ids) != 3 || ids[0] != "q1" || ids[2] != "q3" {
		t.Errorf("Queries = %v", ids)
	}
	if got := q.AvgRelevant(); got != 1.0 {
		t.Errorf("AvgRelevant = %f", got)
	}
}

func TestPerQueryAndEvaluate(t *testing.T) {
	q := make(Qrels)
	q.AddJudgment("q1", "d1")
	q["q2"] = map[string]bool{} // zero-relevant query stays in the average
	run := Run{"q1": {"d1", "x", "y", "z", "w"}, "q2": {"a", "b", "c", "d", "e"}}
	pq := PerQuery(q, run, 5)
	if len(pq) != 2 || pq[0] != 0.2 || pq[1] != 0 {
		t.Errorf("PerQuery = %v", pq)
	}
	if got := MeanPrecisionAt(q, run, 5); got != 0.1 {
		t.Errorf("mean P@5 = %f", got)
	}
	rep := Evaluate("test", q, run)
	if rep.Mean[5] != 0.1 {
		t.Errorf("report mean = %f", rep.Mean[5])
	}
	if len(rep.PerQuery[5]) != 2 {
		t.Error("report per-query missing")
	}
}

func TestPercentGain(t *testing.T) {
	tests := []struct {
		x, base, want float64
	}{
		{0.2, 0.1, 100},
		{0.1, 0.2, -50},
		{0.1, 0.1, 0},
		{0, 0, 0},
		{0.1, 0, 100},
		{0, 0.1, -100},
	}
	for _, tc := range tests {
		if got := PercentGain(tc.x, tc.base); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("PercentGain(%f, %f) = %f, want %f", tc.x, tc.base, got, tc.want)
		}
	}
}

func TestBestOfAndBestPerQuery(t *testing.T) {
	q := make(Qrels)
	q.AddJudgment("q1", "d1")
	q.AddJudgment("q2", "d2")
	r1 := Evaluate("r1", q, Run{"q1": {"d1"}, "q2": {"x"}})
	r2 := Evaluate("r2", q, Run{"q1": {"x"}, "q2": {"d2"}})
	best := BestOf(r1, r2)
	if best[5] != 0.1 { // each run gets one query right: mean 0.1 each
		t.Errorf("BestOf[5] = %f", best[5])
	}
	bpq := BestPerQuery(r1, r2)
	// element-wise max: both queries solved → 0.2 each at P@5
	if bpq[5][0] != 0.2 || bpq[5][1] != 0.2 {
		t.Errorf("BestPerQuery = %v", bpq[5])
	}
}

func TestPairedTTestKnownValue(t *testing.T) {
	// Classic example: paired differences with known t.
	a := []float64{30, 31, 34, 40, 36, 35, 34, 30, 28, 29}
	b := []float64{29, 30, 31, 32, 30, 28, 30, 27, 26, 26}
	tstat, p := PairedTTest(a, b)
	// Differences: 1,1,3,8,6,7,4,3,2,3 → mean 3.8, sd 2.4404…,
	// t = 3.8 / (2.4404/√10) = 4.9237…
	if math.Abs(tstat-4.9237) > 0.001 {
		t.Errorf("t = %f, want ≈4.9237", tstat)
	}
	// Two-tailed p with df=9 for t≈4.92 sits just under 0.001.
	if p < 0.0003 || p > 0.0012 {
		t.Errorf("p = %f, want ≈0.0008", p)
	}
}

func TestPairedTTestNoDifference(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	tstat, p := PairedTTest(a, a)
	if tstat != 0 || p != 1 {
		t.Errorf("identical samples: t=%f p=%f", tstat, p)
	}
}

func TestPairedTTestConstantShift(t *testing.T) {
	a := []float64{2, 3, 4, 5}
	b := []float64{1, 2, 3, 4}
	tstat, p := PairedTTest(a, b)
	if !math.IsInf(tstat, 1) || p != 0 {
		t.Errorf("deterministic improvement: t=%v p=%v", tstat, p)
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	if tstat, p := PairedTTest([]float64{1}, []float64{2}); tstat != 0 || p != 1 {
		t.Error("n=1 should be inconclusive")
	}
	if tstat, p := PairedTTest([]float64{1, 2}, []float64{1}); tstat != 0 || p != 1 {
		t.Error("mismatched lengths should be inconclusive")
	}
}

func TestRegIncBetaAgainstStudentCDF(t *testing.T) {
	// Spot-check the two-tailed p-values against standard t tables:
	// df=10, t=2.228 → p≈0.05; df=30, t=2.042 → p≈0.05; df=5, t=4.032 → p≈0.01.
	cases := []struct {
		df, tval, want float64
	}{
		{10, 2.228, 0.05},
		{30, 2.042, 0.05},
		{5, 4.032, 0.01},
		{20, 2.845, 0.01},
	}
	for _, c := range cases {
		x := c.df / (c.df + c.tval*c.tval)
		p := regIncBeta(c.df/2, 0.5, x)
		if math.Abs(p-c.want) > 0.0015 {
			t.Errorf("df=%v t=%v: p=%f, want ≈%f", c.df, c.tval, p, c.want)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("bounds wrong")
	}
	if regIncBeta(2, 3, -0.5) != 0 || regIncBeta(2, 3, 1.5) != 1 {
		t.Error("out-of-range clamping wrong")
	}
}

// Property: the t-test is antisymmetric in its arguments and p is always
// in [0,1].
func TestTTestProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		t1, p1 := PairedTTest(a, b)
		t2, p2 := PairedTTest(b, a)
		if p1 < 0 || p1 > 1 {
			return false
		}
		if math.Abs(t1+t2) > 1e-9 {
			return false
		}
		return math.Abs(p1-p2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: P@k is monotone in the set of relevant docs — adding a
// judgment never lowers precision.
func TestPrecisionMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ranked []string
		for i := 0; i < 20; i++ {
			ranked = append(ranked, string(rune('a'+rng.Intn(26))))
		}
		rel := map[string]bool{}
		for i := 0; i < 5; i++ {
			rel[string(rune('a'+rng.Intn(26)))] = true
		}
		before := PrecisionAt(rel, ranked, 10)
		rel[ranked[rng.Intn(len(ranked))]] = true
		after := PrecisionAt(rel, ranked, 10)
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

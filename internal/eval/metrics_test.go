package eval

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func relSet(docs ...string) map[string]bool {
	m := map[string]bool{}
	for _, d := range docs {
		m[d] = true
	}
	return m
}

func TestAveragePrecision(t *testing.T) {
	rel := relSet("a", "b", "c")
	// ranks of relevant: 1, 3 → AP = (1/1 + 2/3)/3
	ranked := []string{"a", "x", "b", "y"}
	want := (1.0 + 2.0/3) / 3
	if got := AveragePrecision(rel, ranked); math.Abs(got-want) > 1e-12 {
		t.Errorf("AP = %f, want %f", got, want)
	}
	if AveragePrecision(map[string]bool{}, ranked) != 0 {
		t.Error("AP with no relevant should be 0")
	}
	if AveragePrecision(rel, nil) != 0 {
		t.Error("AP of empty run should be 0")
	}
	// Perfect run.
	if got := AveragePrecision(rel, []string{"a", "b", "c"}); got != 1 {
		t.Errorf("perfect AP = %f", got)
	}
}

func TestReciprocalRank(t *testing.T) {
	rel := relSet("b")
	if got := ReciprocalRank(rel, []string{"a", "b"}); got != 0.5 {
		t.Errorf("RR = %f", got)
	}
	if got := ReciprocalRank(rel, []string{"x", "y"}); got != 0 {
		t.Errorf("RR miss = %f", got)
	}
}

func TestRecallAt(t *testing.T) {
	rel := relSet("a", "b", "c", "d")
	ranked := []string{"a", "x", "b"}
	if got := RecallAt(rel, ranked, 3); got != 0.5 {
		t.Errorf("recall@3 = %f", got)
	}
	if got := RecallAt(rel, ranked, 100); got != 0.5 {
		t.Errorf("recall@100 = %f", got)
	}
	if RecallAt(map[string]bool{}, ranked, 3) != 0 {
		t.Error("recall with no relevant should be 0")
	}
}

func TestRPrecision(t *testing.T) {
	rel := relSet("a", "b")
	if got := RPrecision(rel, []string{"a", "x", "b"}); got != 0.5 {
		t.Errorf("Rprec = %f", got)
	}
}

func TestNDCG(t *testing.T) {
	rel := relSet("a", "b")
	// Perfect ranking of 2 relevant in top 2: nDCG@10 = 1.
	if got := NDCGAt(rel, []string{"a", "b", "x"}, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect nDCG = %f", got)
	}
	// One relevant at rank 2 of an ideal 1: dcg = 1/log2(3), idcg = 1.
	one := relSet("a")
	want := 1 / math.Log2(3)
	if got := NDCGAt(one, []string{"x", "a"}, 10); math.Abs(got-want) > 1e-12 {
		t.Errorf("nDCG = %f, want %f", got, want)
	}
	if NDCGAt(rel, nil, 0) != 0 {
		t.Error("nDCG k=0 should be 0")
	}
}

func TestSummarize(t *testing.T) {
	q := make(Qrels)
	q.AddJudgment("q1", "d1")
	q.AddJudgment("q2", "d2")
	run := Run{"q1": {"d1"}, "q2": {"x", "d2"}}
	s := Summarize("test", q, run)
	if s.NumQueries != 2 {
		t.Errorf("NumQueries = %d", s.NumQueries)
	}
	if math.Abs(s.MAP-0.75) > 1e-12 { // (1 + 0.5)/2
		t.Errorf("MAP = %f", s.MAP)
	}
	if math.Abs(s.MRR-0.75) > 1e-12 {
		t.Errorf("MRR = %f", s.MRR)
	}
	if s.P[5] != (0.2+0.2)/2 {
		t.Errorf("P@5 = %f", s.P[5])
	}
	if s.Recall[5] != 1 {
		t.Errorf("recall@5 = %f", s.Recall[5])
	}
	empty := Summarize("none", Qrels{}, Run{})
	if empty.MAP != 0 || empty.NumQueries != 0 {
		t.Error("empty summary wrong")
	}
}

func TestRobustnessIndex(t *testing.T) {
	q := make(Qrels)
	q.AddJudgment("q1", "d1")
	q.AddJudgment("q2", "d2")
	q.AddJudgment("q3", "d3")
	run := Run{"q1": {"d1"}, "q2": {"x"}, "q3": {"d3"}}
	base := Run{"q1": {"x"}, "q2": {"d2"}, "q3": {"d3"}}
	// q1 improved, q2 hurt, q3 tied → RI = 0
	if got := RobustnessIndex(q, run, base, 1); got != 0 {
		t.Errorf("RI = %f", got)
	}
	if got := RobustnessIndex(q, run, Run{}, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("RI vs empty base = %f", got)
	}
}

func TestPerQueryDelta(t *testing.T) {
	q := make(Qrels)
	q.AddJudgment("q1", "d1")
	q.AddJudgment("q2", "d2")
	run := Run{"q1": {"d1"}, "q2": {}}
	base := Run{"q1": {}, "q2": {"d2"}}
	deltas := PerQueryDelta(q, run, base, 1)
	want := []QueryDelta{{"q1", 1}, {"q2", -1}}
	if !reflect.DeepEqual(deltas, want) {
		t.Errorf("deltas = %v", deltas)
	}
}

// Property: AP, RR, recall, nDCG all live in [0,1].
func TestMetricRangesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rel := map[string]bool{}
		for i := 0; i < 1+rng.Intn(5); i++ {
			rel[string(rune('a'+rng.Intn(10)))] = true
		}
		var ranked []string
		for i := 0; i < rng.Intn(15); i++ {
			ranked = append(ranked, string(rune('a'+rng.Intn(10))))
		}
		for _, v := range []float64{
			AveragePrecision(rel, ranked),
			ReciprocalRank(rel, ranked),
			RecallAt(rel, ranked, 5),
			NDCGAt(rel, ranked, 5),
			RPrecision(rel, ranked),
		} {
			if v < 0 || v > 1.0000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRunTRECRoundTrip(t *testing.T) {
	run := Run{
		"q1": {"d3", "d1", "d2"},
		"q2": {"d9"},
	}
	var buf bytes.Buffer
	if err := WriteRunTREC(&buf, run, "sqe"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunTREC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, run) {
		t.Errorf("round trip: %v vs %v", got, run)
	}
}

func TestRunTRECFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRunTREC(&buf, Run{"q1": {"dA"}}, "tag"); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	fields := strings.Fields(line)
	if len(fields) != 6 || fields[0] != "q1" || fields[1] != "Q0" || fields[2] != "dA" || fields[3] != "1" || fields[5] != "tag" {
		t.Errorf("TREC line = %q", line)
	}
}

func TestReadRunTRECOrdersByScore(t *testing.T) {
	in := "q1 Q0 low 2 0.1 t\nq1 Q0 high 1 0.9 t\n"
	run, err := ReadRunTREC(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run["q1"], []string{"high", "low"}) {
		t.Errorf("order = %v", run["q1"])
	}
}

func TestReadRunTRECErrors(t *testing.T) {
	if _, err := ReadRunTREC(strings.NewReader("q1 Q0 doc\n")); err == nil {
		t.Error("short line should error")
	}
	if _, err := ReadRunTREC(strings.NewReader("q1 Q0 doc x 0.5 t\n")); err == nil {
		t.Error("bad rank should error")
	}
	if _, err := ReadRunTREC(strings.NewReader("q1 Q0 doc 1 zz t\n")); err == nil {
		t.Error("bad score should error")
	}
	// Comments and blanks are fine.
	run, err := ReadRunTREC(strings.NewReader("# comment\n\nq1 Q0 d 1 1.0 t\n"))
	if err != nil || len(run["q1"]) != 1 {
		t.Errorf("comment handling: %v %v", run, err)
	}
}

func TestQrelsTRECRoundTrip(t *testing.T) {
	q := make(Qrels)
	q.AddJudgment("q1", "d1")
	q.AddJudgment("q1", "d2")
	q.AddJudgment("q2", "d3")
	var buf bytes.Buffer
	if err := WriteQrelsTREC(&buf, q); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQrelsTREC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Errorf("round trip: %v vs %v", got, q)
	}
}

func TestReadQrelsZeroRelevance(t *testing.T) {
	in := "q1 0 d1 1\nq2 0 dx 0\n"
	q, err := ReadQrelsTREC(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRelevant("q1") != 1 {
		t.Error("q1 judgment lost")
	}
	// q2 exists with zero relevant docs.
	if _, ok := q["q2"]; !ok || q.NumRelevant("q2") != 0 {
		t.Error("zero-relevant query should survive")
	}
	if _, err := ReadQrelsTREC(strings.NewReader("q1 0 d\n")); err == nil {
		t.Error("short qrels line should error")
	}
	if _, err := ReadQrelsTREC(strings.NewReader("q1 0 d xx\n")); err == nil {
		t.Error("bad relevance should error")
	}
}

package sqe

import (
	"errors"

	"repro/internal/analysis"
	"repro/internal/index"
	"repro/internal/search"
)

// LiveIndex is a live, incrementally updatable document index organised
// as LSM-style immutable segments: streamed documents accumulate in an
// in-memory buffer that flushes on size to immutable on-disk FormatV2
// segments, deletes tombstone documents, and compaction merges the
// committed segments. Queries pin an immutable snapshot, so searches
// racing mutations always see a consistent document set — and score it
// bit-identically to a monolithic index built from the same surviving
// documents (the segment differential and index-while-chaos gates
// enforce this). See index.Segmented for the full contract.
type LiveIndex = index.Segmented

// LiveIndexStats summarises a live index (segment counts, live
// documents, tombstones, lifetime mutation counters).
type LiveIndexStats = index.SegmentedStats

// OpenLiveIndex opens (or creates) a live index rooted at dir, using
// the standard analyzer (the same pipeline NewIndexBuilder and queries
// use). flushDocs is the buffer size in documents that triggers an
// automatic flush to disk; <= 0 keeps index.DefaultFlushDocs. Reopening
// a directory recovers the committed segments and tombstones from the
// manifest; unflushed buffer contents are volatile by design — call
// (*LiveIndex).Flush (or Engine.Flush) before shutdown to make the
// buffer durable.
func OpenLiveIndex(dir string, flushDocs int) (*LiveIndex, error) {
	return index.OpenSegmented(dir, analysis.Standard(), index.WithFlushDocs(flushDocs))
}

// NewLiveEngine builds an Engine whose retrieval runs against a live
// segmented index instead of an immutable one. The full expansion
// pipeline (motifs, caches, precomputed stores, SQE_C) is unchanged;
// retrieval routes through a snapshot-pinning segmented searcher that
// is bit-identical to a monolithic engine over the same surviving
// documents. Documents enter and leave through Engine.Ingest and
// Engine.Delete (or the serving layer's /v1/ingest).
//
// Two configurations are unsupported on a live engine and are
// overridden or rejected: WithLegacyScorer (the legacy oracle walks a
// single immutable index) is forced off, and requests with PRF fail —
// both would otherwise silently evaluate against an empty placeholder
// index rather than the live document set. WithShards and
// WithDistributedSearcher are superseded: the live index's segments are
// the parallelism unit, evaluated with the same fan-out pool.
func NewLiveEngine(g *Graph, live *LiveIndex, opts ...Option) *Engine {
	// The placeholder satisfies the Engine plumbing that expects an
	// immutable index (analyzer lookup, option application); every
	// retrieval routes through the segmented searcher appended last, so
	// the placeholder is never scored against.
	placeholder := index.NewBuilder(live.Analyzer()).Build()
	opts = append(append([]Option(nil), opts...),
		WithDistributedSearcher(search.NewSegmentedSearcher(live)))
	e := NewEngine(g, placeholder, opts...)
	e.live = live
	e.searcher.UseLegacyScorer = false
	return e
}

// errNoLiveIndex rejects live-index operations on engines built over an
// immutable index.
var errNoLiveIndex = errors.New("sqe: engine has no live index (built with NewEngine, not NewLiveEngine)")

// Live returns the engine's live index, or nil for an immutable engine.
func (e *Engine) Live() *LiveIndex { return e.live }

// Ingest streams one document into the live index; it is searchable
// before Ingest returns. See (*LiveIndex).Ingest for flush semantics.
func (e *Engine) Ingest(name, text string) error {
	if e.live == nil {
		return errNoLiveIndex
	}
	return e.live.Ingest(name, text)
}

// Delete tombstones every live document named name and returns how many
// were deleted (0 for an unknown name; not an error).
func (e *Engine) Delete(name string) (int, error) {
	if e.live == nil {
		return 0, errNoLiveIndex
	}
	return e.live.Delete(name)
}

// Flush forces the live index's buffer into a committed on-disk
// segment (a no-op on an empty buffer).
func (e *Engine) Flush() error {
	if e.live == nil {
		return errNoLiveIndex
	}
	return e.live.Flush()
}

// CompactSegments merges the live index's committed segments into one,
// dropping tombstoned documents.
func (e *Engine) CompactSegments() error {
	if e.live == nil {
		return errNoLiveIndex
	}
	return e.live.Compact()
}

// LiveStats reports the live index's state; ok is false for an
// immutable engine.
func (e *Engine) LiveStats() (stats LiveIndexStats, ok bool) {
	if e.live == nil {
		return LiveIndexStats{}, false
	}
	return e.live.Stats(), true
}

package sqe

// This file is the deprecated pre-Do method matrix, kept in one place
// as thin delegations onto Do (and, for the legacy quirks Do rejects,
// onto the internal doSet/doC/doBaseline drivers). New code should call
// Do; everything here exists so old callers keep compiling and keep
// their historical behaviour:
//
//   - a non-positive k runs the pipeline and retrieves nothing (Do
//     rejects k <= 0);
//   - a zero MotifSet in the SearchSet family means "no motifs", where
//     Do's zero MotifSet selects the SQE_C combination;
//   - the PRF wrappers silently clamp out-of-range feedback parameters
//     (normalizePRF) instead of failing validation.

import "context"

// SearchSet runs the full SQE pipeline with one motif configuration:
// expansion, three-part query construction, retrieval.
//
// Deprecated: use Do with an explicit MotifSet.
func (e *Engine) SearchSet(set MotifSet, query string, entityTitles []string, k int) ([]Result, error) {
	return e.SearchSetStatsContext(context.Background(), set, query, entityTitles, k, nil)
}

// SearchSetContext is SearchSet under a context deadline; cancellation
// aborts retrieval mid-evaluation.
//
// Deprecated: use Do with an explicit MotifSet.
func (e *Engine) SearchSetContext(ctx context.Context, set MotifSet, query string, entityTitles []string, k int) ([]Result, error) {
	return e.SearchSetStatsContext(ctx, set, query, entityTitles, k, nil)
}

// SearchSetStats is SearchSet with per-stage instrumentation: entity
// linking, motif search, query build and retrieval timings plus the
// evaluator's counters are accumulated into ps (which may be nil).
//
// Deprecated: use Do with an explicit MotifSet and CollectStats.
func (e *Engine) SearchSetStats(set MotifSet, query string, entityTitles []string, k int, ps *PipelineStats) ([]Result, error) {
	return e.SearchSetStatsContext(context.Background(), set, query, entityTitles, k, ps)
}

// SearchSetStatsContext is SearchSetStats under a context. Like Do, it
// counts one query into PipelineStats.Queries per call. (It historically
// left Queries to the caller while Do counted it — aggregating the two
// entry points into one PipelineStats double- or under-counted; the
// wrappers now share Do's behaviour.)
//
// Deprecated: use Do with an explicit MotifSet and CollectStats.
func (e *Engine) SearchSetStatsContext(ctx context.Context, set MotifSet, query string, entityTitles []string, k int, ps *PipelineStats) ([]Result, error) {
	if k <= 0 || set == 0 {
		// Legacy quirks Do rejects or reinterprets: a non-positive k runs
		// the pipeline and retrieves nothing, and a zero set means "no
		// motifs", not Do's SQE_C default.
		res, _, err := e.doSet(ctx, set, query, entityTitles, k, nil, ps, nil)
		if err != nil {
			return nil, err
		}
		if ps != nil {
			ps.Queries++
		}
		return res, nil
	}
	resp, err := e.Do(ctx, SearchRequest{
		Query: query, EntityTitles: entityTitles, MotifSet: set, K: k,
		CollectStats: ps != nil,
	})
	if err != nil {
		return nil, err
	}
	if ps != nil {
		ps.Add(resp.Stats)
	}
	return resp.Results, nil
}

// Search runs the paper's SQE_C configuration: the first five results
// come from the triangular-motif expansion, results through rank 200
// from the combined expansion, and the remainder from the square-motif
// expansion.
//
// When a document surfaces in more than one of the three runs, the
// Result (and score) of the first run in T → T&S → S order is kept —
// see core.SpliceResultsC for the tie rule.
//
// Deprecated: use Do (the zero MotifSet selects SQE_C).
func (e *Engine) Search(query string, entityTitles []string, k int) ([]Result, error) {
	return e.SearchWithStatsContext(context.Background(), query, entityTitles, k, nil)
}

// SearchContext is Search under a context deadline; cancellation aborts
// the in-flight retrievals mid-evaluation.
//
// Deprecated: use Do (the zero MotifSet selects SQE_C).
func (e *Engine) SearchContext(ctx context.Context, query string, entityTitles []string, k int) ([]Result, error) {
	return e.SearchWithStatsContext(ctx, query, entityTitles, k, nil)
}

// SearchWithStats is Search (the full SQE_C pipeline) with per-stage
// instrumentation accumulated into ps (which may be nil): the three
// per-set expansions and retrievals are all attributed to their stages.
//
// Deprecated: use Do with CollectStats.
func (e *Engine) SearchWithStats(query string, entityTitles []string, k int, ps *PipelineStats) ([]Result, error) {
	return e.SearchWithStatsContext(context.Background(), query, entityTitles, k, ps)
}

// SearchWithStatsContext is SearchWithStats under a context.
//
// Deprecated: use Do with CollectStats.
func (e *Engine) SearchWithStatsContext(ctx context.Context, query string, entityTitles []string, k int, ps *PipelineStats) ([]Result, error) {
	if k <= 0 {
		// Legacy behaviour: the pipeline runs (and counts a query) but
		// retrieves nothing; Do rejects non-positive k instead.
		res, _, err := e.doC(ctx, query, entityTitles, k, ps, nil)
		if err != nil {
			return nil, err
		}
		if ps != nil {
			ps.Queries++
		}
		return res, nil
	}
	resp, err := e.Do(ctx, SearchRequest{
		Query: query, EntityTitles: entityTitles, K: k,
		CollectStats: ps != nil,
	})
	if err != nil {
		return nil, err
	}
	if ps != nil {
		ps.Add(resp.Stats)
	}
	return resp.Results, nil
}

// BaselineSearch runs the plain query-likelihood baseline (QL_Q): the
// user's query with no expansion.
//
// Deprecated: use Do with Baseline set.
func (e *Engine) BaselineSearch(query string, k int) ([]Result, error) {
	return e.BaselineSearchContext(context.Background(), query, k)
}

// BaselineSearchContext is BaselineSearch under a context deadline.
//
// Deprecated: use Do with Baseline set.
func (e *Engine) BaselineSearchContext(ctx context.Context, query string, k int) ([]Result, error) {
	if k <= 0 {
		return e.doBaseline(ctx, query, k, nil, nil, nil)
	}
	resp, err := e.Do(ctx, SearchRequest{Query: query, K: k, Baseline: true})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// SearchPRF applies pseudo-relevance feedback (Lavrenko relevance model)
// on top of the SQE expansion for one motif set — the paper's
// orthogonality experiment (Section 4.3).
//
// Deprecated: use Do with an explicit MotifSet and PRF.
func (e *Engine) SearchPRF(set MotifSet, query string, entityTitles []string, cfg PRFConfig, k int) ([]Result, error) {
	return e.SearchPRFContext(context.Background(), set, query, entityTitles, cfg, k)
}

// SearchPRFContext is SearchPRF under a context. The context governs the
// final retrieval; the feedback pass (a small fixed-depth retrieval) is
// not interruptible.
//
// Deprecated: use Do with an explicit MotifSet and PRF.
func (e *Engine) SearchPRFContext(ctx context.Context, set MotifSet, query string, entityTitles []string, cfg PRFConfig, k int) ([]Result, error) {
	res, _, err := e.doSet(ctx, set, query, entityTitles, k, normalizePRF(cfg), nil, nil)
	return res, err
}

// BaselineSearchPRF applies pseudo-relevance feedback to the plain
// user query with no expansion — the paper's PRF_Q configuration, whose
// collapse on vocabulary-mismatched collections Section 4.3 demonstrates.
//
// Deprecated: use Do with Baseline and PRF.
func (e *Engine) BaselineSearchPRF(query string, cfg PRFConfig, k int) ([]Result, error) {
	return e.BaselineSearchPRFContext(context.Background(), query, cfg, k)
}

// BaselineSearchPRFContext is BaselineSearchPRF under a context (final
// retrieval only, as in SearchPRFContext).
//
// Deprecated: use Do with Baseline and PRF.
func (e *Engine) BaselineSearchPRFContext(ctx context.Context, query string, cfg PRFConfig, k int) ([]Result, error) {
	return e.doBaseline(ctx, query, k, normalizePRF(cfg), nil, nil)
}

// normalizePRF maps the out-of-range PRF values the legacy methods
// silently accepted (prf applies its own defaults for non-positive
// counts) onto values Do's validation admits, preserving behaviour.
func normalizePRF(cfg PRFConfig) *PRFConfig {
	if cfg.FbDocs < 0 {
		cfg.FbDocs = 0
	}
	if cfg.FbTerms < 0 {
		cfg.FbTerms = 0
	}
	if cfg.OrigWeight < 0 || cfg.OrigWeight != cfg.OrigWeight {
		cfg.OrigWeight = 0
	}
	return &cfg
}

// Quickstart: generate the demo environment, expand one query through
// the structural motifs and compare the baseline ranking with the SQE_C
// ranking.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	sqe "repro"
)

func main() {
	log.SetFlags(0)

	// The demo environment is a synthetic Wikipedia-like knowledge base
	// plus an indexed caption collection coupled to it (the paper's real
	// assets — the 2012 Wikipedia dump and Image CLEF — are not
	// redistributable; see DESIGN.md §2).
	env, err := sqe.GenerateDemo(sqe.DemoSmall)
	if err != nil {
		log.Fatal(err)
	}
	eng := env.Engine
	q := env.Queries[0]
	fmt.Printf("query %s: %q\n", q.ID, q.Text)
	fmt.Printf("manual entities: %v\n\n", q.EntityTitles)

	// 1. Expansion: the query graph built from the triangular + square
	// motifs, features weighted by the number of motifs they close.
	exp, err := eng.Expand(q.Text, q.EntityTitles, sqe.MotifTS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expansion features (%d):\n", len(exp.Features))
	for i, f := range exp.Features {
		if i == 10 {
			fmt.Println("  …")
			break
		}
		fmt.Printf("  %-40q |m_a| = %.0f\n", f.Title, f.Weight)
	}

	// 2. Retrieval through Engine.Do, the unified request/response entry
	// point: plain query likelihood vs the full SQE_C pipeline.
	ctx := context.Background()
	baseline, err := eng.Do(ctx, sqe.SearchRequest{Query: q.Text, K: 10, Baseline: true})
	if err != nil {
		log.Fatal(err)
	}
	expanded, err := eng.Do(ctx, sqe.SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10})
	if err != nil {
		log.Fatal(err)
	}
	show := func(name string, rs []sqe.Result) {
		fmt.Printf("\n%s (P@10 = %.2f):\n", name, sqe.PrecisionAt(rs, q.Relevant, 10))
		for i, r := range rs {
			mark := " "
			if q.Relevant[r.Name] {
				mark = "R"
			}
			fmt.Printf("  %2d. [%s] %s\n", i+1, mark, r.Name)
		}
	}
	show("QL_Q baseline", baseline.Results)
	show("SQE_C", expanded.Results)
}

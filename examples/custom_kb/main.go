// Bring-your-own-data: build a knowledge base and a document collection
// from scratch with the public builders and run SQE over them. This is
// the adoption path for any KB with articles, categories and links — a
// company wiki, a product taxonomy, a citation graph.
//
// The tiny KB below models the paper's own running example (Figure 4):
// the query "cable cars" expands to "Funicular" through a triangular
// motif, which is exactly what surfaces the funicular documents that the
// raw query misses.
//
// Run with:
//
//	go run ./examples/custom_kb
package main

import (
	"context"
	"fmt"
	"log"

	sqe "repro"
)

func main() {
	log.SetFlags(0)

	// 1. The knowledge base: articles, categories, links.
	gb := sqe.NewGraphBuilder(16)
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	art := func(title string) sqe.NodeID {
		id, err := gb.AddArticle(title)
		must(err)
		return id
	}
	cat := func(title string) sqe.NodeID {
		id, err := gb.AddCategory(title)
		must(err)
		return id
	}
	cableCar := art("Cable car")
	funicular := art("Funicular")
	tram := art("Tram")
	banksy := art("Banksy")
	graffiti := art("Graffiti")

	transport := cat("Category:Transport")
	railTransport := cat("Category:Cable railways")
	streetArt := cat("Category:Street art")
	artists := cat("Category:Artists")
	must(gb.AddContainment(transport, railTransport))
	must(gb.AddContainment(streetArt, artists))

	// Cable car ↔ Funicular are doubly linked and Funicular carries at
	// least Cable car's categories → triangular motif.
	must(gb.AddMembership(cableCar, railTransport))
	must(gb.AddMembership(funicular, railTransport))
	must(gb.AddMembership(funicular, transport))
	must(gb.AddLink(cableCar, funicular))
	must(gb.AddLink(funicular, cableCar))
	// Tram is linked one-way only: no motif, no expansion.
	must(gb.AddLink(cableCar, tram))
	must(gb.AddMembership(tram, transport))
	// Graffiti ↔ Banksy with a category-containment pair → square motif.
	must(gb.AddMembership(graffiti, streetArt))
	must(gb.AddMembership(banksy, artists))
	must(gb.AddLink(graffiti, banksy))
	must(gb.AddLink(banksy, graffiti))

	graph := gb.Build()

	// 2. The document collection.
	ib := sqe.NewIndexBuilder()
	docs := map[string]string{
		"doc-funicular-1": "the funicular climbs the mountain on steel rails",
		"doc-funicular-2": "vintage funicular railway photographed at dawn",
		"doc-cable-1":     "a cable car crossing the bay on a foggy morning",
		"doc-tram-1":      "a tram waiting at the central station",
		"doc-banksy-1":    "a stencil by banksy on a brick wall",
		"doc-graffiti-1":  "colorful graffiti along the canal",
		"doc-noise-1":     "sunset over the harbor with fishing boats",
	}
	for name, text := range docs {
		ib.Add(name, text)
	}
	ix := ib.Build()

	// A small μ suits a seven-document collection. Options configure the
	// engine at construction; it is immutable (and concurrency-safe)
	// afterwards.
	engine := sqe.NewEngine(graph, ix, sqe.WithDirichletMu(10))

	// 3. Expansion in action: "cable cars" reaches the funicular docs.
	exp, err := engine.Expand("cable cars", []string{"Cable car"}, sqe.MotifTS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query: \"cable cars\", entity: Cable car")
	fmt.Printf("expansion features: ")
	for _, f := range exp.Features {
		fmt.Printf("%q(|m_a|=%.0f) ", f.Title, f.Weight)
	}
	fmt.Println()

	ctx := context.Background()
	baseline, err := engine.Do(ctx, sqe.SearchRequest{Query: "cable cars", K: 5, Baseline: true})
	if err != nil {
		log.Fatal(err)
	}
	expanded, err := engine.Do(ctx, sqe.SearchRequest{
		Query: "cable cars", EntityTitles: []string{"Cable car"}, MotifSet: sqe.MotifTS, K: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbaseline ranking:")
	for i, r := range baseline.Results {
		fmt.Printf("  %d. %s\n", i+1, r.Name)
	}
	fmt.Println("expanded ranking:")
	for i, r := range expanded.Results {
		fmt.Printf("  %d. %s\n", i+1, r.Name)
	}

	// 4. Square motif on the second query of the paper's Figure 4.
	exp2, err := engine.Expand("graffiti street art on walls", []string{"Graffiti"}, sqe.MotifS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: \"graffiti street art on walls\", entity: Graffiti\n")
	fmt.Printf("square-motif features: ")
	for _, f := range exp2.Features {
		fmt.Printf("%q ", f.Title)
	}
	fmt.Println()
}

// Orthogonality demo (paper Section 4.3): pseudo-relevance feedback
// collapses when applied to the raw queries of a vocabulary-mismatched
// collection, but composes productively on top of SQE — the expansion
// fixes the feedback documents, and the relevance model then sharpens
// the query further.
//
// Run with:
//
//	go run ./examples/prf_combination
package main

import (
	"context"
	"fmt"
	"log"

	sqe "repro"
)

func main() {
	log.SetFlags(0)
	env, err := sqe.GenerateDemo(sqe.DemoSmall)
	if err != nil {
		log.Fatal(err)
	}
	eng := env.Engine
	ctx := context.Background()

	var sumBase, sumPRF, sumSQE, sumSQEPRF float64
	prfCfg := sqe.PRFConfig{FbDocs: 10, FbTerms: 20} // pure replacement, as in the paper
	rm3 := sqe.PRFConfig{FbDocs: 10, FbTerms: 20, OrigWeight: 0.5}
	const k = 10

	// Every configuration is one Engine.Do request; pAt runs it and
	// scores the ranking.
	pAt := func(q sqe.DemoQuery, req sqe.SearchRequest) float64 {
		resp, err := eng.Do(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		return sqe.PrecisionAt(resp.Results, q.Relevant, k)
	}

	for _, q := range env.Queries {
		sumBase += pAt(q, sqe.SearchRequest{Query: q.Text, K: k, Baseline: true})

		// PRF over the raw query: feedback concepts come from the top
		// documents of a bad ranking — garbage in, garbage out.
		sumPRF += pAt(q, sqe.SearchRequest{Query: q.Text, K: k, Baseline: true, PRF: &prfCfg})

		sumSQE += pAt(q, sqe.SearchRequest{
			Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: sqe.MotifTS, K: k,
		})

		// SQE ∘ PRF: feedback over the expanded query's ranking.
		sumSQEPRF += pAt(q, sqe.SearchRequest{
			Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: sqe.MotifTS, K: k, PRF: &rm3,
		})
	}

	n := float64(len(env.Queries))
	fmt.Printf("mean P@%d over %d queries:\n", k, len(env.Queries))
	fmt.Printf("  %-22s %.3f\n", "QL_Q (baseline)", sumBase/n)
	fmt.Printf("  %-22s %.3f   ← collapses (paper Table 3)\n", "PRF alone", sumPRF/n)
	fmt.Printf("  %-22s %.3f\n", "SQE_T&S", sumSQE/n)
	fmt.Printf("  %-22s %.3f   ← orthogonal combination\n", "SQE_T&S ∘ PRF", sumSQEPRF/n)
}

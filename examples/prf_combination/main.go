// Orthogonality demo (paper Section 4.3): pseudo-relevance feedback
// collapses when applied to the raw queries of a vocabulary-mismatched
// collection, but composes productively on top of SQE — the expansion
// fixes the feedback documents, and the relevance model then sharpens
// the query further.
//
// Run with:
//
//	go run ./examples/prf_combination
package main

import (
	"fmt"
	"log"

	sqe "repro"
)

func main() {
	log.SetFlags(0)
	env, err := sqe.GenerateDemo(sqe.DemoSmall)
	if err != nil {
		log.Fatal(err)
	}
	eng := env.Engine

	var sumBase, sumPRF, sumSQE, sumSQEPRF float64
	prfCfg := sqe.PRFConfig{FbDocs: 10, FbTerms: 20} // pure replacement, as in the paper
	rm3 := sqe.PRFConfig{FbDocs: 10, FbTerms: 20, OrigWeight: 0.5}
	const k = 10

	for _, q := range env.Queries {
		base, err := eng.BaselineSearch(q.Text, k)
		if err != nil {
			log.Fatal(err)
		}
		sumBase += sqe.PrecisionAt(base, q.Relevant, k)

		// PRF over the raw query: feedback concepts come from the top
		// documents of a bad ranking — garbage in, garbage out.
		prfOnly, err := eng.BaselineSearchPRF(q.Text, prfCfg, k)
		if err != nil {
			log.Fatal(err)
		}
		sumPRF += sqe.PrecisionAt(prfOnly, q.Relevant, k)

		s, err := eng.SearchSet(sqe.MotifTS, q.Text, q.EntityTitles, k)
		if err != nil {
			log.Fatal(err)
		}
		sumSQE += sqe.PrecisionAt(s, q.Relevant, k)

		// SQE ∘ PRF: feedback over the expanded query's ranking.
		sp, err := eng.SearchPRF(sqe.MotifTS, q.Text, q.EntityTitles, rm3, k)
		if err != nil {
			log.Fatal(err)
		}
		sumSQEPRF += sqe.PrecisionAt(sp, q.Relevant, k)
	}

	n := float64(len(env.Queries))
	fmt.Printf("mean P@%d over %d queries:\n", k, len(env.Queries))
	fmt.Printf("  %-22s %.3f\n", "QL_Q (baseline)", sumBase/n)
	fmt.Printf("  %-22s %.3f   ← collapses (paper Table 3)\n", "PRF alone", sumPRF/n)
	fmt.Printf("  %-22s %.3f\n", "SQE_T&S", sumSQE/n)
	fmt.Printf("  %-22s %.3f   ← orthogonal combination\n", "SQE_T&S ∘ PRF", sumSQEPRF/n)
}

// Real-dump workflow: import a MediaWiki XML export (here a bundled
// sample; point -dump at an actual Wikipedia pages-articles dump for the
// real thing), index a caption collection, and run SQE with entities
// linked through the dump's own anchor text.
//
// This is the paper's deployment path end to end: KB = Wikipedia,
// entity linker = anchor-text commonness dictionary (Dexter's recipe),
// expansion = triangular + square motifs over the imported structure.
//
// Run with:
//
//	go run ./examples/wikipedia_dump [-dump path/to/dump.xml] [-maxpages N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	sqe "repro"
)

func main() {
	log.SetFlags(0)
	dumpFlag := flag.String("dump", defaultDump(), "MediaWiki XML export to import")
	maxPages := flag.Int("maxpages", 0, "stop after N pages (0 = all); use when pointing at a full dump")
	flag.Parse()

	f, err := os.Open(*dumpFlag)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	imp, err := sqe.ImportWikiXML(f, sqe.WikiImportOptions{MaxPages: *maxPages})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %s: %d articles, %d categories, %d links resolved, %d red links, %d anchor surfaces\n\n",
		filepath.Base(*dumpFlag), imp.Stats.Articles, imp.Stats.Categories,
		imp.Stats.LinksResolved, imp.Stats.LinksRed, imp.Stats.AnchorSurfaces)

	// A small caption collection over the dump's subject matter.
	ib := sqe.NewIndexBuilder()
	for name, text := range map[string]string{
		"img-001": "a funicular climbing the hillside at dawn",
		"img-002": "the famous cable car turnaround in san francisco",
		"img-003": "vintage funicular railway car on steep rails",
		"img-004": "a tram waiting at the market street stop",
		"img-005": "stencil by banksy on a brick wall",
		"img-006": "colorful graffiti along the canal walls",
		"img-007": "sunset over the bay with sailboats",
		"img-008": "cable car gripman working the lever",
	} {
		ib.Add(name, text)
	}
	eng := sqe.NewEngine(imp.Graph, ib.Build(),
		sqe.WithLinker(imp.Dictionary),
		sqe.WithDirichletMu(25)) // small μ for a tiny collection

	for _, query := range []string{"cable cars", "graffiti street art on walls"} {
		fmt.Printf("query: %q\n", query)
		// One Do call: SQE_C retrieval with entities linked through the
		// anchor dictionary, expansion reported alongside the results.
		resp, err := eng.Do(context.Background(), sqe.SearchRequest{Query: query, K: 5})
		if err != nil {
			log.Fatal(err)
		}
		if exp := resp.Expansion; exp != nil {
			fmt.Printf("  linked entities: %v\n", exp.QueryNodeTitles)
			fmt.Printf("  expansion features:")
			for _, feat := range exp.Features {
				fmt.Printf(" %q(|m_a|=%.0f)", feat.Title, feat.Weight)
			}
			fmt.Println()
		}
		for i, r := range resp.Results {
			fmt.Printf("  %d. %s\n", i+1, r.Name)
		}
		fmt.Println()
	}
}

// defaultDump locates the bundled sample next to this file when run via
// `go run ./examples/wikipedia_dump`.
func defaultDump() string {
	if _, err := os.Stat("examples/wikipedia_dump/sample_dump.xml"); err == nil {
		return "examples/wikipedia_dump/sample_dump.xml"
	}
	return "sample_dump.xml"
}

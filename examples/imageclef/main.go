// Image CLEF-style evaluation through the public API: runs the whole
// benchmark query set with manual and automatic entity selection, prints
// mean precision at the paper's tops and the percentage improvement of
// SQE over the non-expanded baseline (the shape of the paper's Table 2a
// and Figure 6a).
//
// Run with:
//
//	go run ./examples/imageclef [-scale small|default]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	sqe "repro"
)

var tops = []int{5, 10, 20, 100, 1000}

func main() {
	log.SetFlags(0)
	scaleFlag := flag.String("scale", "small", "small|default")
	flag.Parse()
	scale := sqe.DemoSmall
	if *scaleFlag == "default" {
		scale = sqe.DemoDefault
	}
	env, err := sqe.GenerateDemo(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d queries\n\n", env.DatasetName, len(env.Queries))

	// Each configuration is one Engine.Do request shape.
	configs := []struct {
		name string
		req  func(q sqe.DemoQuery) sqe.SearchRequest
	}{
		{"QL_Q", func(q sqe.DemoQuery) sqe.SearchRequest {
			return sqe.SearchRequest{Query: q.Text, K: 1000, Baseline: true}
		}},
		{"SQE_C (M)", func(q sqe.DemoQuery) sqe.SearchRequest {
			return sqe.SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 1000}
		}},
		{"SQE_C (A)", func(q sqe.DemoQuery) sqe.SearchRequest {
			// No entity titles → the engine's Dexter-like linker
			// resolves entities from the query text.
			return sqe.SearchRequest{Query: q.Text, K: 1000}
		}},
	}

	ctx := context.Background()
	means := map[string]map[int]float64{}
	for _, cfg := range configs {
		sums := map[int]float64{}
		for _, q := range env.Queries {
			resp, err := env.Engine.Do(ctx, cfg.req(q))
			if err != nil {
				log.Fatalf("%s/%s: %v", cfg.name, q.ID, err)
			}
			for _, k := range tops {
				sums[k] += sqe.PrecisionAt(resp.Results, q.Relevant, k)
			}
		}
		means[cfg.name] = map[int]float64{}
		for _, k := range tops {
			means[cfg.name][k] = sums[k] / float64(len(env.Queries))
		}
	}

	fmt.Printf("%-12s", "")
	for _, k := range tops {
		fmt.Printf("%9s", fmt.Sprintf("P@%d", k))
	}
	fmt.Println()
	for _, cfg := range configs {
		fmt.Printf("%-12s", cfg.name)
		for _, k := range tops {
			fmt.Printf("%9.3f", means[cfg.name][k])
		}
		fmt.Println()
	}
	fmt.Println()
	for _, name := range []string{"SQE_C (M)", "SQE_C (A)"} {
		fmt.Printf("%-12s improvement over QL_Q:", name)
		for _, k := range tops {
			base := means["QL_Q"][k]
			if base > 0 {
				fmt.Printf("  P@%d %+.0f%%", k, (means[name][k]-base)/base*100)
			}
		}
		fmt.Println()
	}
}

// Image CLEF-style evaluation through the public API: runs the whole
// benchmark query set with manual and automatic entity selection, prints
// mean precision at the paper's tops and the percentage improvement of
// SQE over the non-expanded baseline (the shape of the paper's Table 2a
// and Figure 6a).
//
// Run with:
//
//	go run ./examples/imageclef [-scale small|default]
package main

import (
	"flag"
	"fmt"
	"log"

	sqe "repro"
)

var tops = []int{5, 10, 20, 100, 1000}

func main() {
	log.SetFlags(0)
	scaleFlag := flag.String("scale", "small", "small|default")
	flag.Parse()
	scale := sqe.DemoSmall
	if *scaleFlag == "default" {
		scale = sqe.DemoDefault
	}
	env, err := sqe.GenerateDemo(scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d queries\n\n", env.DatasetName, len(env.Queries))

	type runner func(q sqe.DemoQuery) ([]sqe.Result, error)
	configs := []struct {
		name string
		run  runner
	}{
		{"QL_Q", func(q sqe.DemoQuery) ([]sqe.Result, error) {
			return env.Engine.BaselineSearch(q.Text, 1000)
		}},
		{"SQE_C (M)", func(q sqe.DemoQuery) ([]sqe.Result, error) {
			return env.Engine.Search(q.Text, q.EntityTitles, 1000)
		}},
		{"SQE_C (A)", func(q sqe.DemoQuery) ([]sqe.Result, error) {
			// nil entity titles → the engine's Dexter-like linker
			// resolves entities from the query text.
			return env.Engine.Search(q.Text, nil, 1000)
		}},
	}

	means := map[string]map[int]float64{}
	for _, cfg := range configs {
		sums := map[int]float64{}
		for _, q := range env.Queries {
			rs, err := cfg.run(q)
			if err != nil {
				log.Fatalf("%s/%s: %v", cfg.name, q.ID, err)
			}
			for _, k := range tops {
				sums[k] += sqe.PrecisionAt(rs, q.Relevant, k)
			}
		}
		means[cfg.name] = map[int]float64{}
		for _, k := range tops {
			means[cfg.name][k] = sums[k] / float64(len(env.Queries))
		}
	}

	fmt.Printf("%-12s", "")
	for _, k := range tops {
		fmt.Printf("%9s", fmt.Sprintf("P@%d", k))
	}
	fmt.Println()
	for _, cfg := range configs {
		fmt.Printf("%-12s", cfg.name)
		for _, k := range tops {
			fmt.Printf("%9.3f", means[cfg.name][k])
		}
		fmt.Println()
	}
	fmt.Println()
	for _, name := range []string{"SQE_C (M)", "SQE_C (A)"} {
		fmt.Printf("%-12s improvement over QL_Q:", name)
		for _, k := range tops {
			base := means["QL_Q"][k]
			if base > 0 {
				fmt.Printf("  P@%d %+.0f%%", k, (means[name][k]-base)/base*100)
			}
		}
		fmt.Println()
	}
}

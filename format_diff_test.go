package sqe

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/index"
)

// TestEngineFormatParity is the cross-format differential gate: the same
// corpus served from memory, from a FormatV1 file and from a FormatV2
// file (mmap'd, lazily decoded) must produce bit-identical rankings and
// scores for every pipeline configuration — all three retrieval models,
// raw and expanded queries, shard counts 1/2/4. Pruning stays on
// everywhere, so the v2 leg also exercises Block-Max over the on-disk
// block directory.
func TestEngineFormatParity(t *testing.T) {
	e := demo(t)
	dir := t.TempDir()
	mem := e.Engine.Index()

	v1Path := filepath.Join(dir, "ix.v1")
	if err := index.WriteFile(v1Path, mem, index.FormatV1); err != nil {
		t.Fatal(err)
	}
	v2Path := filepath.Join(dir, "ix.v2")
	if err := index.WriteFile(v2Path, mem, index.FormatV2); err != nil {
		t.Fatal(err)
	}
	v1, err := index.Open(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	v2, err := index.Open(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()

	models := []struct {
		name string
		opts []Option
	}{
		{"dirichlet", nil},
		{"jelinek-mercer", []Option{WithRetrievalModel(ModelJelinekMercer, ModelParams{Lambda: 0.4})}},
		{"bm25", []Option{WithRetrievalModel(ModelBM25, ModelParams{})}},
	}
	for _, m := range models {
		for _, s := range []int{1, 2, 4} {
			mk := func(ix *Index) *Engine {
				return NewEngine(e.Engine.Graph(), ix, append([]Option{WithShards(s)}, m.opts...)...)
			}
			engines := map[string]*Engine{"v1": mk(v1), "v2": mk(v2)}
			ref := mk(mem)
			for _, q := range e.Queries {
				for _, req := range []SearchRequest{
					{Query: q.Text, EntityTitles: q.EntityTitles, K: 10},                    // SQE_C, expanded
					{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 25}, // single set, expanded
					{Query: q.Text, K: 25, Baseline: true},                                  // raw
				} {
					want, err := ref.Do(context.Background(), req)
					if err != nil {
						t.Fatalf("%s S=%d %s: memory: %v", m.name, s, q.ID, err)
					}
					for fname, fe := range engines {
						got, err := fe.Do(context.Background(), req)
						if err != nil {
							t.Fatalf("%s S=%d %s: %s: %v", m.name, s, q.ID, fname, err)
						}
						if !reflect.DeepEqual(want.Results, got.Results) {
							t.Fatalf("%s S=%d %s k=%d set=%v baseline=%v: %s results diverge from memory",
								m.name, s, q.ID, req.K, req.MotifSet, req.Baseline, fname)
						}
					}
				}
			}
		}
	}
	if err := v2.Err(); err != nil {
		t.Fatalf("v2 lazy decode recorded an error: %v", err)
	}
}

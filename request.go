package sqe

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/prf"
	"repro/internal/search"
)

// SearchRequest describes one retrieval through the SQE pipeline — the
// single request shape behind Engine.Do, which replaces the old
// Search/SearchSet/SearchWithStats/SearchPRF × Context × Stats method
// matrix.
type SearchRequest struct {
	// Query is the user's free-text query.
	Query string
	// EntityTitles names the query entities explicitly (resolved against
	// the KB graph; unknown titles are errors). Empty means "link
	// automatically" when the engine has a linker, or "no entities".
	EntityTitles []string
	// MotifSet selects the expansion configuration. The zero value runs
	// the paper's SQE_C combination (T, T&S and S runs spliced at ranks
	// 5 and 200); MotifT/MotifTS/MotifS run a single configuration.
	MotifSet MotifSet
	// K is the number of results to return; it must be positive.
	K int
	// PRF, when non-nil, applies pseudo-relevance feedback on top of the
	// expanded (or baseline) query. It requires an explicit MotifSet or
	// Baseline — the SQE_C combination has no PRF variant in the paper.
	PRF *PRFConfig
	// Baseline runs the plain query-likelihood baseline (QL_Q): no
	// expansion, no entities. It excludes MotifSet and EntityTitles.
	Baseline bool
	// CollectStats asks for per-stage instrumentation in the response.
	CollectStats bool
}

// Validate reports whether the request describes a well-formed pipeline
// run. Do rejects invalid requests with the same error before doing any
// work.
func (r SearchRequest) Validate() error {
	if r.K <= 0 {
		return fmt.Errorf("sqe: K must be positive, got %d", r.K)
	}
	switch r.MotifSet {
	case 0, MotifT, MotifS, MotifTS:
	default:
		return fmt.Errorf("sqe: unknown motif set %d", r.MotifSet)
	}
	if r.Baseline {
		if r.MotifSet != 0 {
			return errors.New("sqe: Baseline excludes MotifSet (the baseline runs no expansion)")
		}
		if len(r.EntityTitles) > 0 {
			return errors.New("sqe: Baseline excludes EntityTitles (the baseline runs no expansion)")
		}
	} else if r.PRF != nil && r.MotifSet == 0 {
		return errors.New("sqe: PRF requires an explicit MotifSet or Baseline (SQE_C has no PRF variant)")
	}
	if p := r.PRF; p != nil {
		if p.FbDocs < 0 {
			return fmt.Errorf("sqe: PRF.FbDocs must not be negative, got %d", p.FbDocs)
		}
		if p.FbTerms < 0 {
			return fmt.Errorf("sqe: PRF.FbTerms must not be negative, got %d", p.FbTerms)
		}
		if math.IsNaN(p.OrigWeight) || p.OrigWeight < 0 || p.OrigWeight > 1 {
			return fmt.Errorf("sqe: PRF.OrigWeight must be in [0,1], got %v", p.OrigWeight)
		}
	}
	return nil
}

// SearchResponse is the result of one Engine.Do call.
type SearchResponse struct {
	// Results is the final ranking, at most K entries.
	Results []Result
	// Stats holds the pipeline instrumentation when the request set
	// CollectStats (Queries is always 1 — aggregate across requests with
	// PipelineStats.Add); nil otherwise.
	Stats *PipelineStats
	// Expansion is the expansion used to build the final query: the
	// single run's for an explicit MotifSet, the combined (T&S) run's
	// for SQE_C. Nil for Baseline requests, which expand nothing — and
	// for requests whose expansion was degraded to the unexpanded
	// query (see Degraded.ExpansionFallbacks), or whose T&S run was
	// dropped from an SQE_C splice.
	Expansion *Expansion
	// Degraded reports what graceful degradation did to this request:
	// dropped shards or SQE_C runs, expansion fallbacks, transient-
	// fault retries. Nil when nothing happened — always nil on engines
	// built without WithDegradation.
	Degraded *Degradation
}

// Do runs one retrieval through the SQE pipeline. It is the primary
// entry point: every deprecated Search* method is a thin wrapper over
// the same machinery. The context's deadline or cancellation aborts
// retrieval mid-evaluation (including inside every shard's loop on a
// sharded engine).
func (e *Engine) Do(ctx context.Context, req SearchRequest) (*SearchResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if e.live != nil && req.PRF != nil {
		// PRF reformulates against the engine's unsharded searcher, which
		// on a live engine wraps an empty placeholder index — feedback
		// would silently come from no documents.
		return nil, errors.New("sqe: PRF is not supported on a live (segmented) engine")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var ps *PipelineStats
	if req.CollectStats {
		ps = &PipelineStats{}
	}
	var deg *Degradation
	if e.degrade != nil {
		deg = &Degradation{}
	}
	resp := &SearchResponse{}
	var err error
	switch {
	case req.Baseline:
		resp.Results, err = e.doBaseline(ctx, req.Query, req.K, req.PRF, ps, deg)
	case req.MotifSet == 0:
		resp.Results, resp.Expansion, err = e.doC(ctx, req.Query, req.EntityTitles, req.K, ps, deg)
	default:
		resp.Results, resp.Expansion, err = e.doSet(ctx, req.MotifSet, req.Query, req.EntityTitles, req.K, req.PRF, ps, deg)
	}
	if err != nil {
		return nil, err
	}
	if ps != nil {
		ps.Queries++
		resp.Stats = ps
	}
	if deg != nil && !deg.empty() {
		resp.Degraded = deg
	}
	return resp, nil
}

// doSet runs one motif configuration end to end: entity resolution,
// (cached) motif expansion, three-part query construction, optional PRF
// reformulation, retrieval. Stage timings and evaluator counters
// accumulate into ps when non-nil; degradation events accumulate into
// deg when non-nil (see Engine.buildQuery and Engine.retrieve).
func (e *Engine) doSet(ctx context.Context, set MotifSet, query string, entityTitles []string, k int, prfCfg *PRFConfig, ps *PipelineStats, deg *Degradation) ([]Result, *Expansion, error) {
	start := time.Now()
	nodes, err := e.resolveEntities(query, entityTitles)
	if ps != nil {
		ps.Stages.EntityLink += time.Since(start)
	}
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	node, exp, err := e.buildQuery(ctx, query, nodes, set, ps, deg)
	if err != nil {
		return nil, nil, err
	}
	if prfCfg != nil {
		// The feedback pass is a small fixed-depth retrieval over the
		// unsharded searcher; it contributes to query construction, not
		// to the final retrieval's timing.
		start = time.Now()
		node = prf.Reformulate(e.searcher, node, *prfCfg)
		if ps != nil {
			ps.Stages.QueryBuild += time.Since(start)
		}
	}
	res, err := e.retrieveTimed(ctx, node, k, ps, deg)
	if err != nil {
		return nil, nil, err
	}
	return res, exp, nil
}

// sqecRunNames are the paper's names for SQE_C's runs, in splice order;
// Degradation.DroppedRuns uses them.
var sqecRunNames = [3]string{"T", "TS", "S"}

// doC runs the paper's SQE_C combination: three independent runs (T,
// T&S, S) spliced at ranks 5 and 200. With the engine's worker count
// above one the runs evaluate concurrently behind the engine-wide
// semaphore; per-run stats are accumulated privately and merged in run
// order, so output and stats are byte-identical to the sequential path.
// The returned Expansion is the combined (T&S) run's.
//
// With degradation enabled each run is guarded (fault hook, panic
// containment, transient retry), and under PartialSQEC a failed run is
// dropped from the splice — the survivors still cover their rank bands,
// and Degradation.DroppedRuns names the missing lists. All three runs
// failing fails the request with the first run's error.
// sqecSets is the run order of the SQE_C combination: triangular alone,
// both motifs, square alone — the splice in core.SpliceResultsC keys off
// this order.
var sqecSets = [3]MotifSet{MotifT, MotifTS, MotifS}

func (e *Engine) doC(ctx context.Context, query string, entityTitles []string, k int, ps *PipelineStats, deg *Degradation) ([]Result, *Expansion, error) {
	var runs [3][]Result
	var exps [3]*Expansion
	var errs [3]error
	// Each run records degradation privately; the records merge in run
	// order below, so parallel and sequential SQE_C report identically.
	var degs [3]*Degradation
	runOne := func(i int, set MotifSet, ps *PipelineStats) {
		if deg == nil {
			runs[i], exps[i], errs[i] = e.doSet(ctx, set, query, entityTitles, k, nil, ps, nil)
			return
		}
		degs[i] = &Degradation{}
		errs[i] = retryTransient(ctx, e.degrade, degs[i], func() error {
			return guardPanic(func() error {
				if err := fault.Check(fault.SQECRun); err != nil {
					return err
				}
				var err error
				runs[i], exps[i], err = e.doSet(ctx, set, query, entityTitles, k, nil, ps, degs[i])
				return err
			})
		})
	}
	partial := deg != nil && e.degrade.PartialSQEC
	if e.workers <= 1 {
		for i, set := range sqecSets {
			runOne(i, set, ps)
			if errs[i] != nil && !partial {
				return nil, nil, errs[i]
			}
		}
	} else {
		var pss [3]*PipelineStats
		var wg sync.WaitGroup
		for i, set := range sqecSets {
			if ps != nil {
				pss[i] = &PipelineStats{}
			}
			wg.Add(1)
			go func(i int, set MotifSet) {
				defer wg.Done()
				e.sem <- struct{}{}
				defer func() { <-e.sem }()
				runOne(i, set, pss[i])
			}(i, set)
		}
		wg.Wait()
		if ps != nil {
			for _, p := range pss {
				ps.Add(p)
			}
		}
	}
	if deg != nil {
		for _, d := range degs {
			deg.add(d)
		}
	}
	var firstErr error
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		// First error in run order, so parallel failures are reported
		// identically to sequential ones. A cancelled parent context is
		// the caller's signal and is never degraded into a partial
		// splice; neither is a request with no surviving run.
		if !partial || failed == len(errs) || ctx.Err() != nil {
			return nil, nil, firstErr
		}
		for i, err := range errs {
			if err != nil {
				runs[i], exps[i] = nil, nil
				deg.DroppedRuns = append(deg.DroppedRuns, sqecRunNames[i])
			}
		}
	}
	return core.SpliceResultsC(k, runs[0], runs[1], runs[2]), exps[1], nil
}

// doBaseline runs the plain query-likelihood baseline (QL_Q), optionally
// with PRF on top.
func (e *Engine) doBaseline(ctx context.Context, query string, k int, prfCfg *PRFConfig, ps *PipelineStats, deg *Degradation) ([]Result, error) {
	start := time.Now()
	node := e.expander.QLQuery(query)
	if prfCfg != nil {
		node = prf.Reformulate(e.searcher, node, *prfCfg)
	}
	if ps != nil {
		ps.Stages.QueryBuild += time.Since(start)
	}
	return e.retrieveTimed(ctx, node, k, ps, deg)
}

// expansionOf converts the expander's query graph into the public
// Expansion shape.
func (e *Engine) expansionOf(qg core.QueryGraph) *Expansion {
	exp := &Expansion{QueryNodes: qg.QueryNodes}
	for _, n := range qg.QueryNodes {
		exp.QueryNodeTitles = append(exp.QueryNodeTitles, e.graph.Title(n))
	}
	for _, f := range qg.Features {
		exp.Features = append(exp.Features, Feature{
			Article: f.Article,
			Title:   e.graph.Title(f.Article),
			Weight:  f.Weight,
		})
	}
	return exp
}

// retrieve routes a retrieval to the sharded searcher when the engine
// was built with WithShards (the legacy scorer has no sharded variant
// and keeps the unsharded path). Results are bit-identical either way.
// With degradation enabled (deg non-nil) the sharded path runs with
// per-shard deadlines, transient retries and — under PartialShards —
// partial merges, while the unsharded path gets panic containment and
// transient retries (there is no partial result to salvage from a
// single index).
func (e *Engine) retrieve(ctx context.Context, node search.Node, k int, deg *Degradation) ([]Result, error) {
	if e.sharded != nil && !e.searcher.UseLegacyScorer {
		if deg != nil && e.degrade != nil {
			res, pi, err := e.sharded.SearchDegraded(ctx, node, k, e.searchDegradeOptions())
			deg.absorb(pi)
			return res, err
		}
		return e.sharded.SearchContext(ctx, node, k)
	}
	if deg != nil && e.degrade != nil {
		var res []Result
		err := retryTransient(ctx, e.degrade, deg, func() error {
			return guardPanic(func() error {
				var err error
				res, err = e.searcher.SearchContext(ctx, node, k)
				return err
			})
		})
		return res, err
	}
	return e.searcher.SearchContext(ctx, node, k)
}

// retrieveStats is retrieve with evaluator instrumentation (including
// per-shard timings on a sharded engine).
func (e *Engine) retrieveStats(ctx context.Context, node search.Node, k int, deg *Degradation) ([]Result, SearchStats, error) {
	if e.sharded != nil && !e.searcher.UseLegacyScorer {
		if deg != nil && e.degrade != nil {
			res, st, pi, err := e.sharded.SearchDegradedWithStats(ctx, node, k, e.searchDegradeOptions())
			deg.absorb(pi)
			return res, st, err
		}
		return e.sharded.SearchWithStatsContext(ctx, node, k)
	}
	if deg != nil && e.degrade != nil {
		var res []Result
		var st SearchStats
		err := retryTransient(ctx, e.degrade, deg, func() error {
			return guardPanic(func() error {
				var err error
				res, st, err = e.searcher.SearchWithStatsContext(ctx, node, k)
				return err
			})
		})
		return res, st, err
	}
	return e.searcher.SearchWithStatsContext(ctx, node, k)
}

// retrieveTimed runs the routed retrieval, attributing wall-clock and
// evaluator counters to ps when non-nil.
func (e *Engine) retrieveTimed(ctx context.Context, node search.Node, k int, ps *PipelineStats, deg *Degradation) ([]Result, error) {
	if ps == nil {
		return e.retrieve(ctx, node, k, deg)
	}
	start := time.Now()
	res, st, err := e.retrieveStats(ctx, node, k, deg)
	ps.Stages.Retrieval += time.Since(start)
	ps.Search.Add(st)
	ps.Retrievals++
	if err != nil {
		return nil, err
	}
	return res, nil
}

package sqe

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/index"
)

// TestScratchPoolConcurrentDoStress hammers the pooled evaluation
// scratch from many goroutines mixing engines with different shard
// counts over a streaming (FormatV2 mmap) index, different K (scratch
// shapes of different sizes), and deadlines that expire mid-query. Under
// -race (the Makefile `race` target) this is the gate proving no scratch
// state escapes between requests: every completed request must be
// byte-identical to its single-threaded expectation, no matter what
// queries — or cancellations — the other goroutines interleave.
func TestScratchPoolConcurrentDoStress(t *testing.T) {
	e := demo(t)
	mem := e.Engine.Index()
	v2Path := filepath.Join(t.TempDir(), "ix.v2")
	if err := index.WriteFile(v2Path, mem, index.FormatV2); err != nil {
		t.Fatal(err)
	}
	v2, err := index.Open(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()

	// S=1 shares the v2 index, so its leaves stream per-block from the
	// mapping; S>1 partitions into in-memory shards (eager leaves). The
	// memory engine mixes in the unsharded eager path. All four drain
	// the same global scratch pool.
	engines := []*Engine{
		NewEngine(e.Engine.Graph(), v2, WithShards(1)),
		NewEngine(e.Engine.Graph(), v2, WithShards(2)),
		NewEngine(e.Engine.Graph(), v2, WithShards(4)),
		NewEngine(e.Engine.Graph(), mem),
	}
	queries := e.Queries
	reqFor := func(qi, shape int) SearchRequest {
		q := queries[qi%len(queries)]
		switch shape % 3 {
		case 0: // expanded SQE_C, small k
			return SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 5}
		case 1: // single set, large k — a much bigger heap/scratch shape
			return SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, MotifSet: MotifTS, K: 100, CollectStats: true}
		default: // raw baseline, few leaves
			return SearchRequest{Query: q.Text, K: 20, Baseline: true}
		}
	}

	// Single-threaded expectations per (engine, query, shape).
	const shapes = 3
	want := make([][]*SearchResponse, len(engines))
	for ei, eng := range engines {
		want[ei] = make([]*SearchResponse, len(queries)*shapes)
		for qi := range queries {
			for s := 0; s < shapes; s++ {
				resp, err := eng.Do(context.Background(), reqFor(qi, s))
				if err != nil {
					t.Fatalf("engine %d q %d shape %d: %v", ei, qi, s, err)
				}
				want[ei][qi*shapes+s] = resp
			}
		}
	}

	const goroutines = 12
	iters := 40
	if testing.Short() {
		iters = 8
	}
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				ei := (w + it) % len(engines)
				qi := (w * 7 / 3 * it) % len(queries)
				s := (w + it) % shapes
				req := reqFor(qi, s)
				ctx := context.Background()
				var cancel context.CancelFunc
				if it%5 == 4 {
					// A deadline short enough to sometimes expire mid-
					// evaluation: the request must either fail with the
					// context error (scratch returned on the cancel path)
					// or complete byte-identically — never a third thing.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+w*it%200)*time.Microsecond)
				}
				got, err := engines[ei].Do(ctx, req)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
						continue
					}
					t.Errorf("worker %d engine %d q %d shape %d: %v", w, ei, qi, s, err)
					return
				}
				exp := want[ei][qi*shapes+s]
				if !reflect.DeepEqual(got.Results, exp.Results) {
					t.Errorf("worker %d engine %d q %d shape %d: results diverge from single-threaded run", w, ei, qi, s)
					return
				}
				if req.CollectStats {
					// Deterministic counters must survive pooling too.
					if got.Stats == nil ||
						got.Stats.Search.CandidatesExamined != exp.Stats.Search.CandidatesExamined ||
						got.Stats.Search.PostingsAdvanced != exp.Stats.Search.PostingsAdvanced ||
						got.Stats.Search.BlocksDecoded != exp.Stats.Search.BlocksDecoded {
						t.Errorf("worker %d engine %d q %d: counters diverge under concurrency", w, ei, qi)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := v2.Err(); err != nil {
		t.Fatalf("streaming under stress recorded an index error: %v", err)
	}
}

package sqe

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// updateGolden rewrites the golden retrieval files instead of diffing
// against them: go test -run TestGoldenRetrieval -update ./...
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files from current output")

// The golden corpus pins end-to-end retrieval output — exact ranking
// and exact scores — for every retrieval model × raw/expanded query
// shape, over the deterministic demo fixture. Scores are serialised as
// hex floats (strconv 'x'), so the files round-trip float64 bit
// patterns exactly: any change to tokenisation, smoothing, pruning,
// sharded merging or splicing that moves a single bit shows up as a
// golden diff, reviewable in the PR that caused it.
type goldenFile struct {
	Model   string        `json:"model"`
	Mode    string        `json:"mode"`
	K       int           `json:"k"`
	Queries []goldenQuery `json:"queries"`
}

type goldenQuery struct {
	Query   string         `json:"query"`
	Results []goldenResult `json:"results"`
}

type goldenResult struct {
	Name  string `json:"name"`
	Score string `json:"score"` // hex float64, e.g. -0x1.91f1bcp+03
}

func goldenResults(rs []Result) []goldenResult {
	out := make([]goldenResult, len(rs))
	for i, r := range rs {
		out[i] = goldenResult{Name: r.Name, Score: strconv.FormatFloat(r.Score, 'x', -1, 64)}
	}
	return out
}

func TestGoldenRetrieval(t *testing.T) {
	const k = 10
	// Two engines over the identical fixture: unsharded and 4-way
	// sharded. Both are diffed against the same golden file — shard
	// parity is part of the pinned contract (the cross-shard statistics
	// override makes sharded scores bit-identical to unsharded).
	models := []struct {
		name   string
		model  RetrievalModel
		params ModelParams
	}{
		{"dirichlet", ModelDirichlet, ModelParams{}},
		{"jm", ModelJelinekMercer, ModelParams{}},
		{"bm25", ModelBM25, ModelParams{}},
	}
	modes := []struct {
		name string
		req  func(q DemoQuery) SearchRequest
	}{
		{"raw", func(q DemoQuery) SearchRequest {
			return SearchRequest{Query: q.Text, K: k, Baseline: true}
		}},
		{"expanded", func(q DemoQuery) SearchRequest {
			return SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: k}
		}},
	}

	ctx := context.Background()
	for _, m := range models {
		// The retrieval model is construction-time configuration (the
		// mutating Set* wrappers are gone), so generate a fresh pair of
		// demo environments per model: unsharded and 4-way sharded over
		// the identical fixture — demo generation is deterministic, so
		// every pair sees the same corpus and queries.
		env1, err := GenerateDemo(DemoSmall, WithRetrievalModel(m.model, m.params))
		if err != nil {
			t.Fatalf("GenerateDemo: %v", err)
		}
		env4, err := GenerateDemo(DemoSmall, WithShards(4), WithRetrievalModel(m.model, m.params))
		if err != nil {
			t.Fatalf("GenerateDemo shards=4: %v", err)
		}
		queries := env1.Queries
		if len(queries) > 3 {
			queries = queries[:3]
		}
		for _, mode := range modes {
			t.Run(m.name+"/"+mode.name, func(t *testing.T) {
				got := goldenFile{Model: m.name, Mode: mode.name, K: k}
				for _, q := range queries {
					req := mode.req(q)
					r1, err := env1.Engine.Do(ctx, req)
					if err != nil {
						t.Fatalf("unsharded %q: %v", q.Text, err)
					}
					r4, err := env4.Engine.Do(ctx, req)
					if err != nil {
						t.Fatalf("sharded %q: %v", q.Text, err)
					}
					g1, g4 := goldenResults(r1.Results), goldenResults(r4.Results)
					if err := diffGolden(g1, g4); err != nil {
						t.Fatalf("shards=4 diverges from shards=1 on %q: %v", q.Text, err)
					}
					got.Queries = append(got.Queries, goldenQuery{Query: q.Text, Results: g1})
				}

				path := filepath.Join("testdata", "golden", m.name+"_"+mode.name+".json")
				if *updateGolden {
					buf, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s", path)
					return
				}
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
				}
				var want goldenFile
				if err := json.Unmarshal(raw, &want); err != nil {
					t.Fatalf("corrupt golden %s: %v", path, err)
				}
				if want.K != got.K || len(want.Queries) != len(got.Queries) {
					t.Fatalf("golden %s shape changed: k=%d/%d queries=%d/%d (run -update if intended)",
						path, got.K, want.K, len(got.Queries), len(want.Queries))
				}
				for i := range want.Queries {
					if want.Queries[i].Query != got.Queries[i].Query {
						t.Fatalf("query %d is %q, golden has %q", i, got.Queries[i].Query, want.Queries[i].Query)
					}
					if err := diffGolden(want.Queries[i].Results, got.Queries[i].Results); err != nil {
						t.Errorf("%s, query %q: %v (run -update if the change is intended)",
							path, want.Queries[i].Query, err)
					}
				}
			})
		}
	}
}

// diffGolden compares two rankings for exact equality — order, names
// and float64 bit patterns — and reports the first divergence.
func diffGolden(want, got []goldenResult) error {
	if len(want) != len(got) {
		return fmt.Errorf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("rank %d: got %s=%s, want %s=%s",
				i, got[i].Name, got[i].Score, want[i].Name, want[i].Score)
		}
	}
	return nil
}

package sqe

import (
	"io"

	"repro/internal/analysis"
	"repro/internal/entitylink"
	"repro/internal/kb"
	"repro/internal/wikixml"
)

// WikiImportOptions re-exports the MediaWiki importer's options.
type WikiImportOptions = wikixml.Options

// WikiImport is the result of importing a MediaWiki XML export: the KB
// graph, import statistics, and an entity-linking dictionary built from
// the dump's own anchor text (anchor → target counts give Dexter-style
// commonness).
type WikiImport struct {
	Graph *Graph
	Stats wikixml.Stats
	// Dictionary is ready for WithLinker.
	Dictionary *entitylink.Dictionary
}

// ImportWikiXML reads a MediaWiki XML export (e.g. a Wikipedia
// pages-articles dump, or a sample of one via MaxPages) and prepares
// everything SQE needs from it. Index your document collection with
// NewIndexBuilder, then:
//
//	imp, _ := sqe.ImportWikiXML(f, sqe.WikiImportOptions{})
//	eng := sqe.NewEngine(imp.Graph, ix, sqe.WithLinker(imp.Dictionary))
func ImportWikiXML(r io.Reader, opts WikiImportOptions) (*WikiImport, error) {
	res, err := wikixml.Parse(r, opts)
	if err != nil {
		return nil, err
	}
	imp := &WikiImport{Graph: res.Graph, Stats: res.Stats}
	imp.Dictionary = entitylink.NewDictionary(analysis.Standard())

	// Titles always link to their own article.
	res.Graph.Articles(func(a kb.NodeID) bool {
		imp.Dictionary.AddTitle(res.Graph.Title(a), a, 1)
		return true
	})
	// Anchor text with per-target commonness = count / total.
	for surface, targets := range res.Anchors {
		total := 0
		for _, c := range targets {
			total += c
		}
		for title, c := range targets {
			id := res.Graph.ByTitle(title)
			if id == kb.Invalid {
				continue
			}
			imp.Dictionary.AddSurface(surface, id, float64(c)/float64(total))
		}
	}
	return imp, nil
}

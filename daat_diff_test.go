package sqe

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/motif"
	"repro/internal/search"
)

// TestDAATMatchesLegacyOnDemoSmall is the end-to-end differential test
// of the ISSUE acceptance criteria: on the DemoSmall corpus, for every
// benchmark query's fully expanded SQE_T&S query (dozens of phrase
// features — the workload the DAAT evaluator was built for), the DAAT
// and legacy evaluators must agree on documents, order, and scores
// (within 1e-12) under Dirichlet, Jelinek-Mercer, and BM25. An OOV term
// is appended to each query so empty leaves are exercised too.
func TestDAATMatchesLegacyOnDemoSmall(t *testing.T) {
	env := demo(t)
	eng := env.Engine
	g := eng.Graph()
	ex := eng.Expander()
	ix := eng.Index()

	models := []struct {
		name  string
		model RetrievalModel
	}{
		{"dirichlet", ModelDirichlet},
		{"jelinek-mercer", ModelJelinekMercer},
		{"bm25", ModelBM25},
	}
	for _, q := range env.Queries {
		var nodes []NodeID
		for _, title := range q.EntityTitles {
			if id := g.ByTitle(title); id >= 0 {
				nodes = append(nodes, id)
			}
		}
		qg := ex.BuildQueryGraph(nodes, motif.SetTS)
		// The OOV suffix analyzes to a leaf with empty postings.
		node := ex.BuildQuery(q.Text+" zzzunseenterm", qg)
		for _, m := range models {
			daat := search.NewSearcher(ix)
			legacy := search.NewSearcher(ix)
			legacy.UseLegacyScorer = true
			daat.Model, legacy.Model = m.model, m.model
			for _, k := range []int{10, 1000} {
				rd := daat.Search(node, k)
				rl := legacy.Search(node, k)
				label := fmt.Sprintf("%s/%s/k=%d", q.ID, m.name, k)
				if len(rd) != len(rl) {
					t.Fatalf("%s: DAAT %d results, legacy %d", label, len(rd), len(rl))
				}
				for i := range rd {
					if rd[i].Doc != rl[i].Doc {
						t.Fatalf("%s: rank %d: DAAT doc %d (%s), legacy doc %d (%s)",
							label, i, rd[i].Doc, rd[i].Name, rl[i].Doc, rl[i].Name)
					}
					if math.Abs(rd[i].Score-rl[i].Score) > 1e-12 {
						t.Fatalf("%s: rank %d: scores differ: %v vs %v", label, i, rd[i].Score, rl[i].Score)
					}
				}
			}
		}
	}
}

// TestEngineLegacyScorerToggle checks the Engine-level option drives the
// same pipeline to identical results.
func TestEngineLegacyScorerToggle(t *testing.T) {
	env := demo(t)
	q := env.Queries[0]
	req := SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10}
	daatResp, err := env.Engine.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// The scorer choice is construction-time configuration now; build a
	// second engine over the same graph and index with the legacy scorer.
	legacyEng := NewEngine(env.Engine.Graph(), env.Engine.Index(), WithLegacyScorer())
	legacyResp, err := legacyEng.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	daat, legacy := daatResp.Results, legacyResp.Results
	if len(daat) != len(legacy) {
		t.Fatalf("result counts differ: %d vs %d", len(daat), len(legacy))
	}
	for i := range daat {
		if daat[i] != legacy[i] {
			t.Errorf("rank %d: %v vs %v", i, daat[i], legacy[i])
		}
	}
}

// TestSearchWithStatsPopulates checks the stats plumbing end to end:
// running the SQE_C pipeline with a collector attached must attribute
// time to every stage and count 3 retrievals per query.
func TestSearchWithStatsPopulates(t *testing.T) {
	env := demo(t)
	q := env.Queries[0]
	req := SearchRequest{Query: q.Text, EntityTitles: q.EntityTitles, K: 10, CollectStats: true}
	resp, err := env.Engine.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res, ps := resp.Results, resp.Stats
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if ps == nil {
		t.Fatal("CollectStats returned no stats")
	}
	if ps.Queries != 1 || ps.Retrievals != 3 {
		t.Errorf("Queries=%d Retrievals=%d, want 1/3", ps.Queries, ps.Retrievals)
	}
	if ps.Stages.MotifSearch <= 0 || ps.Stages.QueryBuild <= 0 || ps.Stages.Retrieval <= 0 {
		t.Errorf("stage timings not populated: %+v", ps.Stages)
	}
	if ps.Search.CandidatesExamined == 0 || ps.Search.PostingsAdvanced == 0 {
		t.Errorf("search counters not populated: %+v", ps.Search)
	}
	if ps.Stages.Total() <= 0 {
		t.Errorf("Total() = %v", ps.Stages.Total())
	}
	// Stats must not change what is returned.
	noStats := req
	noStats.CollectStats = false
	plain, err := env.Engine.Do(context.Background(), noStats)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i] != plain.Results[i] {
			t.Errorf("rank %d differs with stats attached: %v vs %v", i, res[i], plain.Results[i])
		}
	}
}
